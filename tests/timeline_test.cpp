/// Tests of the allocation-timeline recording and its Gantt rendering.

#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "core/timeline.hpp"
#include "fault/exponential.hpp"
#include "speedup/synthetic.hpp"
#include "util/units.hpp"

namespace coredis::core {
namespace {

Pack make_pack(std::vector<double> sizes) {
  std::vector<TaskSpec> tasks;
  for (double m : sizes) tasks.push_back({m});
  return Pack(std::move(tasks), std::make_shared<speedup::SyntheticModel>(0.08));
}

RunResult run_with_timeline(const Pack& pack, int p, double mtbf_years,
                            std::uint64_t seed) {
  const checkpoint::Model resilience(
      {mtbf_years > 0 ? units::years(mtbf_years) : 0.0, 60.0, 1.0,
       checkpoint::PeriodRule::Young, 0.0});
  EngineConfig config{EndPolicy::Local, FailurePolicy::IteratedGreedy, false};
  config.record_timeline = true;
  Engine engine(pack, resilience, p, config);
  if (mtbf_years > 0) {
    fault::ExponentialGenerator faults(p, 1.0 / units::years(mtbf_years),
                                       Rng(seed));
    return engine.run(faults);
  }
  fault::NullGenerator faults(p);
  return engine.run(faults);
}

TEST(Timeline, SegmentsAreContiguousPerTask) {
  const Pack pack = make_pack({2.0e6, 1.2e6, 2.4e6, 4.0e5});
  const RunResult result = run_with_timeline(pack, 24, 3.0, 11);
  ASSERT_FALSE(result.timeline.empty());

  std::map<int, std::vector<AllocationSegment>> per_task;
  for (const AllocationSegment& segment : result.timeline) {
    EXPECT_GE(segment.task, 0);
    EXPECT_LT(segment.task, 4);
    EXPECT_GE(segment.processors, 2);
    EXPECT_EQ(segment.processors % 2, 0);
    EXPECT_LE(segment.start, segment.end);
    per_task[segment.task].push_back(segment);
  }
  for (const auto& [task, segments] : per_task) {
    EXPECT_DOUBLE_EQ(segments.front().start, 0.0);
    for (std::size_t i = 1; i < segments.size(); ++i)
      EXPECT_DOUBLE_EQ(segments[i].start, segments[i - 1].end);
    EXPECT_DOUBLE_EQ(
        segments.back().end,
        result.completion_times[static_cast<std::size_t>(task)]);
    EXPECT_EQ(segments.back().processors,
              result.final_allocation[static_cast<std::size_t>(task)]);
  }
}

TEST(Timeline, SegmentCountMatchesRedistributions) {
  // Every committed redistribution closes exactly one segment, every task
  // closes its last one at completion, and every early release (Alg. 2
  // line 28) adds one extra boundary — visible as its trailing
  // ledger-unowned segment.
  const Pack pack = make_pack({2.0e6, 1.2e6, 2.4e6, 4.0e5, 1.8e6});
  const RunResult result = run_with_timeline(pack, 30, 2.0, 21);
  int unowned = 0;
  for (const AllocationSegment& segment : result.timeline)
    unowned += segment.ledger_owned ? 0 : 1;
  EXPECT_EQ(static_cast<int>(result.timeline.size()),
            pack.size() + result.redistributions + unowned);
}

TEST(Timeline, FaultFreeStaticRunHasOneSegmentPerTask) {
  const Pack pack = make_pack({2.0e6, 2.0e6});
  const checkpoint::Model resilience(
      {0.0, 60.0, 1.0, checkpoint::PeriodRule::Young, 0.0});
  EngineConfig config{EndPolicy::None, FailurePolicy::None, false};
  config.record_timeline = true;
  Engine engine(pack, resilience, 8, config);
  fault::NullGenerator faults(8);
  const RunResult result = engine.run(faults);
  EXPECT_EQ(result.timeline.size(), 2u);
}

TEST(Timeline, DisabledByDefault) {
  const Pack pack = make_pack({2.0e6});
  const checkpoint::Model resilience(
      {0.0, 60.0, 1.0, checkpoint::PeriodRule::Young, 0.0});
  Engine engine(pack, resilience, 2,
                {EndPolicy::None, FailurePolicy::None, false});
  fault::NullGenerator faults(2);
  EXPECT_TRUE(engine.run(faults).timeline.empty());
}

TEST(Gantt, RendersRowsAxisAndLegend) {
  std::vector<AllocationSegment> timeline{
      {0, 0.0, 50.0, 4},  {0, 50.0, 100.0, 8},
      {1, 0.0, 100.0, 2},
  };
  const std::string chart = render_gantt(timeline, 2);
  EXPECT_NE(chart.find("T000"), std::string::npos);
  EXPECT_NE(chart.find("T001"), std::string::npos);
  EXPECT_NE(chart.find('2'), std::string::npos);  // 4 procs = 2 pairs
  EXPECT_NE(chart.find('4'), std::string::npos);  // 8 procs = 4 pairs
  EXPECT_NE(chart.find('1'), std::string::npos);  // 2 procs = 1 pair
  EXPECT_NE(chart.find("redistribution"), std::string::npos);
}

TEST(Gantt, CapsRowsAndReportsHiddenTasks) {
  std::vector<AllocationSegment> timeline;
  for (int task = 0; task < 50; ++task)
    timeline.push_back({task, 0.0, 10.0, 2});
  GanttOptions options;
  options.max_rows = 5;
  const std::string chart = render_gantt(timeline, 50, options);
  EXPECT_NE(chart.find("45 more tasks not shown"), std::string::npos);
}

TEST(Gantt, LargeAllocationsUsePlusGlyph) {
  std::vector<AllocationSegment> timeline{{0, 0.0, 10.0, 64}};
  const std::string chart = render_gantt(timeline, 1);
  EXPECT_NE(chart.find('+'), std::string::npos);
}

TEST(Gantt, EmptyTimelineIsSafe) {
  EXPECT_EQ(render_gantt({}, 3), "(empty timeline)\n");
}

/// Platform-conservation property, checked *through time*: at any instant
/// the sum of allocations across overlapping segments never exceeds p.
/// Exercised under a fault storm with the aggressive rebuild heuristics.
class TimelineConservation : public ::testing::TestWithParam<int> {};

TEST_P(TimelineConservation, AllocationsNeverExceedPlatform) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 65537 + 1);
  const int n = 6;
  const int p = 40;
  std::vector<TaskSpec> tasks;
  for (int i = 0; i < n; ++i) tasks.push_back({rng.uniform(3.0e5, 2.5e6)});
  const Pack pack(std::move(tasks),
                  std::make_shared<speedup::SyntheticModel>(0.08));
  const checkpoint::Model resilience({units::years(1.0), 60.0, 1.0,
                                      checkpoint::PeriodRule::Young, 0.0});
  EngineConfig config{EndPolicy::Greedy, FailurePolicy::IteratedGreedy,
                      false};
  config.record_timeline = true;
  Engine engine(pack, resilience, p, config);
  fault::ExponentialGenerator faults(
      p, 1.0 / units::years(1.0),
      Rng(static_cast<std::uint64_t>(GetParam())));
  const RunResult result = engine.run(faults);

  // Sweep the boundary instants; between boundaries the sum is constant.
  std::vector<double> instants;
  for (const AllocationSegment& segment : result.timeline) {
    instants.push_back(segment.start);
    instants.push_back(segment.end);
  }
  for (double t : instants) {
    int held = 0;
    for (const AllocationSegment& segment : result.timeline)
      if (segment.ledger_owned && segment.start <= t && t < segment.end)
        held += segment.processors;
    EXPECT_LE(held, p) << "instant " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Storms, TimelineConservation, ::testing::Range(0, 6));

TEST(TimelineCsv, RoundTripsFields) {
  std::vector<AllocationSegment> timeline{{2, 1.5, 9.25, 6}};
  const std::string csv = timeline_csv(timeline);
  EXPECT_NE(csv.find("task,start,end,processors"), std::string::npos);
  EXPECT_NE(csv.find("2,1.5,9.25,6"), std::string::npos);
}

}  // namespace
}  // namespace coredis::core
