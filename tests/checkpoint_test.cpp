/// Tests of the checkpointing substrate: Young/Daly periods, the
/// resilience cost model of section 3.1, and the buddy protocol state
/// machine (double checkpointing, section 2.2).

#include <gtest/gtest.h>

#include <cmath>

#include "checkpoint/buddy.hpp"
#include "checkpoint/model.hpp"
#include "checkpoint/period.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace coredis::checkpoint {
namespace {

TEST(Period, YoungFormula) {
  // Eq. 1: tau = sqrt(2 mu C) + C.
  EXPECT_DOUBLE_EQ(young_period(1.0e6, 50.0), std::sqrt(2.0 * 1.0e6 * 50.0) + 50.0);
}

TEST(Period, YoungIsFirstOrderOfDaly) {
  // For C << mu the two estimates agree to first order.
  const double mu = 1.0e8;
  const double cost = 10.0;
  const double young = young_period(mu, cost);
  const double daly = daly_period(mu, cost);
  EXPECT_NEAR(daly / young, 1.0, 1e-3);
}

TEST(Period, DalyClampsPathologicalRegime) {
  // C >= 2 mu: checkpointing every period is hopeless, clamp to mu + C.
  EXPECT_DOUBLE_EQ(daly_period(10.0, 30.0), 40.0);
}

TEST(Period, StrainPredicate) {
  EXPECT_FALSE(period_assumption_strained(1.0e6, 10.0));
  EXPECT_TRUE(period_assumption_strained(50.0, 10.0));
}

TEST(Period, DispatchFixed) {
  EXPECT_DOUBLE_EQ(period_for(PeriodRule::Fixed, 1e6, 5.0, 100.0), 105.0);
  EXPECT_DOUBLE_EQ(period_for(PeriodRule::Young, 1e6, 5.0),
                   young_period(1e6, 5.0));
  EXPECT_DOUBLE_EQ(period_for(PeriodRule::Daly, 1e6, 5.0),
                   daly_period(1e6, 5.0));
}

class ModelTest : public ::testing::Test {
 protected:
  ResilienceParams params_{units::years(100.0), 60.0, 1.0, PeriodRule::Young,
                           0.0};
  Model model_{params_};
};

TEST_F(ModelTest, LambdaAndTaskRates) {
  EXPECT_DOUBLE_EQ(model_.lambda(), 1.0 / units::years(100.0));
  EXPECT_FALSE(model_.fault_free());
  // MTBF of a task on j processors is mu/j (section 3.1).
  EXPECT_DOUBLE_EQ(model_.task_mtbf(10), units::years(100.0) / 10.0);
  EXPECT_DOUBLE_EQ(model_.task_rate(10), 10.0 / units::years(100.0));
}

TEST_F(ModelTest, CostsScaleInverselyWithProcessors) {
  const double c_seq = model_.sequential_cost(2.0e6);  // C_i = c * m_i
  EXPECT_DOUBLE_EQ(c_seq, 2.0e6);
  EXPECT_DOUBLE_EQ(model_.cost(c_seq, 8), c_seq / 8.0);  // C_{i,j} = C_i/j
  EXPECT_DOUBLE_EQ(model_.recovery(c_seq, 8), model_.cost(c_seq, 8));
}

TEST_F(ModelTest, PeriodUsesTaskLevelQuantities) {
  const double c_seq = model_.sequential_cost(2.0e6);
  const int j = 4;
  const double expected = young_period(model_.task_mtbf(j), model_.cost(c_seq, j));
  EXPECT_DOUBLE_EQ(model_.period(c_seq, j), expected);
}

TEST(ModelFaultFree, InfinitePeriod) {
  Model model({0.0, 60.0, 1.0, PeriodRule::Young, 0.0});
  EXPECT_TRUE(model.fault_free());
  EXPECT_TRUE(std::isinf(model.period(1000.0, 2)));
  EXPECT_EQ(model.task_rate(4), 0.0);
}

/// Young's period scales as 1/j in both mu and C, so lambda_j * tau_{i,j}
/// is independent of j — the property that keeps Eq. 4 well-behaved at
/// scale (no overflow as allocations grow).
TEST(ModelScaling, RateTimesPeriodIndependentOfProcessors) {
  Model model({units::years(50.0), 60.0, 1.0, PeriodRule::Young, 0.0});
  const double c_seq = model.sequential_cost(1.7e6);
  const double reference = model.task_rate(2) * model.period(c_seq, 2);
  for (int j = 4; j <= 4096; j *= 2)
    EXPECT_NEAR(model.task_rate(j) * model.period(c_seq, j), reference,
                1e-9 * reference);
}

TEST(Buddy, OrdinaryFailureRollsBack) {
  BuddyGroup group(4);
  EXPECT_EQ(group.on_failure(3, 100.0, 10.0), FaultOutcome::Rollback);
  EXPECT_TRUE(group.recovering(3, 105.0));
  EXPECT_TRUE(group.recovering(2, 105.0));   // whole pair is busy
  EXPECT_FALSE(group.recovering(0, 105.0));  // other pairs unaffected
  EXPECT_FALSE(group.recovering(3, 111.0));  // recovery over
  EXPECT_EQ(group.rollbacks(), 1);
  EXPECT_EQ(group.fatal_failures(), 0);
}

TEST(Buddy, BuddyStruckDuringRecoveryIsFatal) {
  BuddyGroup group(1);
  EXPECT_EQ(group.on_failure(0, 100.0, 10.0), FaultOutcome::Rollback);
  // Processor 1 (the buddy holding both copies) dies mid-recovery.
  EXPECT_EQ(group.on_failure(1, 105.0, 10.0), FaultOutcome::Fatal);
  EXPECT_EQ(group.fatal_failures(), 1);
}

TEST(Buddy, SameNodeFailingAgainIsNotFatal) {
  BuddyGroup group(1);
  EXPECT_EQ(group.on_failure(0, 100.0, 10.0), FaultOutcome::Rollback);
  // The same node dying again just restarts its recovery: the buddy still
  // holds both checkpoint copies.
  EXPECT_EQ(group.on_failure(0, 105.0, 10.0), FaultOutcome::Rollback);
  EXPECT_TRUE(group.recovering(0, 114.0));
  EXPECT_EQ(group.fatal_failures(), 0);
}

TEST(Buddy, FailureAfterRecoveryIsOrdinary) {
  BuddyGroup group(1);
  group.on_failure(0, 100.0, 10.0);
  EXPECT_EQ(group.on_failure(1, 120.0, 10.0), FaultOutcome::Rollback);
  EXPECT_EQ(group.rollbacks(), 2);
}

/// At realistic scales (recovery of seconds-to-hours vs MTBFs of years)
/// fatal double-faults are vanishingly rare — quantified here with an
/// aggressive failure rate to keep the test fast.
TEST(Buddy, FatalDoubleFaultsAreRareAtScale) {
  Rng rng(77);
  BuddyGroup group(64);
  const double recovery = 10.0;
  const double mtbf = 1.0e5;  // per node, far above recovery
  int fatal = 0;
  double now = 0.0;
  for (int i = 0; i < 20000; ++i) {
    now += rng.exponential(128.0 / mtbf);  // platform rate
    const int node = static_cast<int>(rng.uniform_int(0, 127));
    if (group.on_failure(node, now, recovery) == FaultOutcome::Fatal) ++fatal;
  }
  // P(buddy struck in a 10s window) ~ 1e-4 per failure.
  EXPECT_LT(fatal, 20);
}

}  // namespace
}  // namespace coredis::checkpoint
