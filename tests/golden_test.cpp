/// \file golden_test.cpp
/// Golden determinism tests: seeded simulations pinned field-by-field.
///
/// The values below were generated from the seed implementation (the
/// pre-coefficient-table, linear-event-scan engine of PR 1) and must never
/// drift: the hot-path machinery added since — the per-(task, j)
/// coefficient table, the pinned TrEvaluator columns, the indexed event
/// queues, the heap replace-top grant loops — is pure caching and exact
/// algebraic rewriting, so every seeded run must reproduce the seed's
/// results bit for bit. Each scenario runs through BOTH event-queue
/// implementations (EngineConfig::linear_event_scan) and the two must
/// agree exactly, double for double.

#include <cstdint>
#include <gtest/gtest.h>
#include <memory>

#include "core/engine.hpp"
#include "fault/exponential.hpp"
#include "fault/weibull.hpp"
#include "speedup/synthetic.hpp"
#include "util/units.hpp"

namespace coredis {
namespace {

struct GoldenCase {
  int n;
  int p;
  bool weibull;
  core::EndPolicy end_policy;
  core::FailurePolicy failure_policy;
  std::uint64_t seed;
  // Pinned RunResult fields (seed implementation, %.17g).
  double makespan;
  int redistributions;
  long long checkpoints_taken;
  int faults_effective;
};

// Generated once from the seed implementation; do not regenerate from a
// newer build (that would defeat the test's purpose).
constexpr GoldenCase kGolden[] = {
    {6, 48, false, core::EndPolicy::Local,
     core::FailurePolicy::ShortestTasksFirst, 101ULL,
     28057130.865125518, 13, 37, 6},
    {6, 48, false, core::EndPolicy::Greedy,
     core::FailurePolicy::IteratedGreedy, 101ULL,
     28008060.455199219, 14, 38, 6},
    {6, 48, true, core::EndPolicy::Local,
     core::FailurePolicy::ShortestTasksFirst, 101ULL,
     27278785.570191696, 7, 33, 8},
    {6, 48, true, core::EndPolicy::Greedy,
     core::FailurePolicy::IteratedGreedy, 101ULL,
     27669211.532209367, 13, 35, 7},
    {10, 100, false, core::EndPolicy::Local,
     core::FailurePolicy::IteratedGreedy, 202ULL,
     21350302.779374614, 21, 58, 7},
    {10, 100, false, core::EndPolicy::Greedy,
     core::FailurePolicy::ShortestTasksFirst, 202ULL,
     21556655.198558543, 21, 63, 8},
    {10, 100, true, core::EndPolicy::Local,
     core::FailurePolicy::IteratedGreedy, 202ULL,
     25755883.958173439, 53, 82, 23},
    {10, 100, true, core::EndPolicy::Greedy,
     core::FailurePolicy::ShortestTasksFirst, 202ULL,
     27489179.259895466, 52, 87, 23},
    {16, 200, false, core::EndPolicy::None,
     core::FailurePolicy::None, 303ULL,
     23680496.422157433, 0, 87, 16},
    {16, 200, true, core::EndPolicy::Local,
     core::FailurePolicy::IteratedGreedy, 303ULL,
     21560687.452145703, 72, 129, 23},
};

core::RunResult run_case(const GoldenCase& c, bool linear_event_scan) {
  Rng pack_rng(c.seed);
  const core::Pack pack = core::Pack::uniform_random(
      c.n, 1.5e6, 2.5e6, std::make_shared<speedup::SyntheticModel>(0.08),
      pack_rng);
  const checkpoint::Model resilience({units::years(10.0), 60.0, 1.0,
                                      checkpoint::PeriodRule::Young, 0.0});
  core::EngineConfig config;
  config.end_policy = c.end_policy;
  config.failure_policy = c.failure_policy;
  config.linear_event_scan = linear_event_scan;
  core::Engine engine(pack, resilience, c.p, config);
  const double mtbf = units::years(10.0);
  if (c.weibull) {
    fault::WeibullGenerator gen(c.p, mtbf, 0.7, c.seed ^ 0xABCDEF);
    return engine.run(gen);
  }
  fault::ExponentialGenerator gen(c.p, 1.0 / mtbf, Rng(c.seed ^ 0xABCDEF));
  return engine.run(gen);
}

TEST(Golden, SeededGridMatchesSeedImplementation) {
  for (const GoldenCase& c : kGolden) {
    SCOPED_TRACE(::testing::Message()
                 << "n=" << c.n << " p=" << c.p << " weibull=" << c.weibull
                 << " end=" << to_string(c.end_policy)
                 << " fail=" << to_string(c.failure_policy));
    const core::RunResult r = run_case(c, /*linear_event_scan=*/false);
    EXPECT_DOUBLE_EQ(r.makespan, c.makespan);
    EXPECT_EQ(r.redistributions, c.redistributions);
    EXPECT_EQ(r.checkpoints_taken, c.checkpoints_taken);
    EXPECT_EQ(r.faults_effective, c.faults_effective);
  }
}

TEST(Golden, EventQueueImplementationsAgreeBitForBit) {
  for (const GoldenCase& c : kGolden) {
    SCOPED_TRACE(::testing::Message()
                 << "n=" << c.n << " p=" << c.p << " weibull=" << c.weibull
                 << " end=" << to_string(c.end_policy)
                 << " fail=" << to_string(c.failure_policy));
    const core::RunResult indexed = run_case(c, /*linear_event_scan=*/false);
    const core::RunResult linear = run_case(c, /*linear_event_scan=*/true);
    // Exact equality, not near: the indexed queues must reproduce the
    // linear scans' event order perfectly.
    EXPECT_EQ(indexed.makespan, linear.makespan);
    EXPECT_EQ(indexed.redistributions, linear.redistributions);
    EXPECT_EQ(indexed.checkpoints_taken, linear.checkpoints_taken);
    EXPECT_EQ(indexed.faults_effective, linear.faults_effective);
    EXPECT_EQ(indexed.faults_discarded, linear.faults_discarded);
    EXPECT_EQ(indexed.redistribution_cost, linear.redistribution_cost);
    EXPECT_EQ(indexed.time_lost_to_faults, linear.time_lost_to_faults);
    ASSERT_EQ(indexed.completion_times.size(), linear.completion_times.size());
    for (std::size_t i = 0; i < indexed.completion_times.size(); ++i) {
      EXPECT_EQ(indexed.completion_times[i], linear.completion_times[i]);
      EXPECT_EQ(indexed.final_allocation[i], linear.final_allocation[i]);
    }
  }
}

TEST(Golden, RepeatedRunsOfOneEngineAreIdentical) {
  // The engine's caches persist across run() calls; a warm second run must
  // replay the cold first one exactly.
  const GoldenCase& c = kGolden[1];
  Rng pack_rng(c.seed);
  const core::Pack pack = core::Pack::uniform_random(
      c.n, 1.5e6, 2.5e6, std::make_shared<speedup::SyntheticModel>(0.08),
      pack_rng);
  const checkpoint::Model resilience({units::years(10.0), 60.0, 1.0,
                                      checkpoint::PeriodRule::Young, 0.0});
  core::Engine engine(pack, resilience, c.p,
                      {c.end_policy, c.failure_policy});
  const double mtbf = units::years(10.0);
  double first = 0.0;
  for (int round = 0; round < 3; ++round) {
    fault::ExponentialGenerator gen(c.p, 1.0 / mtbf, Rng(c.seed ^ 0xABCDEF));
    const core::RunResult r = engine.run(gen);
    if (round == 0) {
      first = r.makespan;
      EXPECT_DOUBLE_EQ(r.makespan, c.makespan);
    } else {
      EXPECT_EQ(r.makespan, first);
    }
  }
}

}  // namespace
}  // namespace coredis
