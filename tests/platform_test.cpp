/// Tests of the processor-allocation ledger.

#include <gtest/gtest.h>

#include <set>

#include "platform/platform.hpp"

namespace coredis::platform {
namespace {

TEST(Platform, StartsFullyIdle) {
  Platform platform(8);
  EXPECT_EQ(platform.processors(), 8);
  EXPECT_EQ(platform.free_count(), 8);
  EXPECT_EQ(platform.in_use(), 0);
  for (int proc = 0; proc < 8; ++proc) EXPECT_EQ(platform.owner(proc), kIdle);
}

TEST(Platform, AcquireAssignsOwnership) {
  Platform platform(8);
  const auto granted = platform.acquire(3, 4);
  EXPECT_EQ(granted.size(), 4u);
  EXPECT_EQ(platform.allocated(3), 4);
  EXPECT_EQ(platform.free_count(), 4);
  for (int proc : granted) EXPECT_EQ(platform.owner(proc), 3);
}

TEST(Platform, ReleaseReturnsToPool) {
  Platform platform(8);
  platform.acquire(0, 6);
  const auto revoked = platform.release(0, 2);
  EXPECT_EQ(revoked.size(), 2u);
  EXPECT_EQ(platform.allocated(0), 4);
  EXPECT_EQ(platform.free_count(), 4);
  for (int proc : revoked) EXPECT_EQ(platform.owner(proc), kIdle);
}

TEST(Platform, ReleaseAllClearsTask) {
  Platform platform(8);
  platform.acquire(1, 4);
  platform.acquire(2, 4);
  platform.release_all(1);
  EXPECT_EQ(platform.allocated(1), 0);
  EXPECT_EQ(platform.allocated(2), 4);
  EXPECT_EQ(platform.free_count(), 4);
}

TEST(Platform, ReacquisitionRecyclesProcessors) {
  Platform platform(4);
  platform.acquire(0, 4);
  platform.release_all(0);
  const auto granted = platform.acquire(1, 4);
  const std::set<int> unique(granted.begin(), granted.end());
  EXPECT_EQ(unique.size(), 4u);
  EXPECT_EQ(platform.free_count(), 0);
}

TEST(Platform, MovesBetweenTasksKeepConservation) {
  Platform platform(16);
  platform.acquire(0, 8);
  platform.acquire(1, 8);
  platform.release(0, 4);
  platform.acquire(1, 4);
  EXPECT_EQ(platform.allocated(0), 4);
  EXPECT_EQ(platform.allocated(1), 12);
  EXPECT_EQ(platform.in_use(), 16);
  EXPECT_EQ(platform.free_count(), 0);
}

TEST(Platform, ContractsRejectMisuse) {
  Platform platform(8);
  EXPECT_DEATH((void)platform.acquire(0, 3), "precondition");   // odd count
  EXPECT_DEATH((void)platform.acquire(0, 10), "precondition");  // beyond pool
  platform.acquire(0, 4);
  EXPECT_DEATH((void)platform.release(0, 6), "precondition");  // > held
  EXPECT_DEATH((void)platform.owner(99), "precondition");
  EXPECT_DEATH(Platform(7), "precondition");  // odd platform
}

TEST(Platform, DeterministicAcquisitionOrder) {
  Platform a(8);
  Platform b(8);
  EXPECT_EQ(a.acquire(0, 4), b.acquire(0, 4));
  EXPECT_EQ(a.acquire(1, 2), b.acquire(1, 2));
}

}  // namespace
}  // namespace coredis::platform
