/// Tests of the processor-allocation ledger.

#include <gtest/gtest.h>

#include <set>

#include "platform/platform.hpp"

namespace coredis::platform {
namespace {

TEST(Platform, StartsFullyIdle) {
  Platform platform(8);
  EXPECT_EQ(platform.processors(), 8);
  EXPECT_EQ(platform.free_count(), 8);
  EXPECT_EQ(platform.in_use(), 0);
  for (int proc = 0; proc < 8; ++proc) EXPECT_EQ(platform.owner(proc), kIdle);
}

TEST(Platform, AcquireAssignsOwnership) {
  Platform platform(8);
  const auto granted = platform.acquire(3, 4);
  EXPECT_EQ(granted.size(), 4u);
  EXPECT_EQ(platform.allocated(3), 4);
  EXPECT_EQ(platform.free_count(), 4);
  for (int proc : granted) EXPECT_EQ(platform.owner(proc), 3);
}

TEST(Platform, ReleaseReturnsToPool) {
  Platform platform(8);
  platform.acquire(0, 6);
  const auto revoked = platform.release(0, 2);
  EXPECT_EQ(revoked.size(), 2u);
  EXPECT_EQ(platform.allocated(0), 4);
  EXPECT_EQ(platform.free_count(), 4);
  for (int proc : revoked) EXPECT_EQ(platform.owner(proc), kIdle);
}

TEST(Platform, ReleaseAllClearsTask) {
  Platform platform(8);
  platform.acquire(1, 4);
  platform.acquire(2, 4);
  platform.release_all(1);
  EXPECT_EQ(platform.allocated(1), 0);
  EXPECT_EQ(platform.allocated(2), 4);
  EXPECT_EQ(platform.free_count(), 4);
}

TEST(Platform, ReacquisitionRecyclesProcessors) {
  Platform platform(4);
  platform.acquire(0, 4);
  platform.release_all(0);
  const auto granted = platform.acquire(1, 4);
  const std::set<int> unique(granted.begin(), granted.end());
  EXPECT_EQ(unique.size(), 4u);
  EXPECT_EQ(platform.free_count(), 0);
}

TEST(Platform, MovesBetweenTasksKeepConservation) {
  Platform platform(16);
  platform.acquire(0, 8);
  platform.acquire(1, 8);
  platform.release(0, 4);
  platform.acquire(1, 4);
  EXPECT_EQ(platform.allocated(0), 4);
  EXPECT_EQ(platform.allocated(1), 12);
  EXPECT_EQ(platform.in_use(), 16);
  EXPECT_EQ(platform.free_count(), 0);
}

TEST(Platform, ContractsRejectMisuse) {
  Platform platform(8);
  EXPECT_DEATH((void)platform.acquire(0, 3), "precondition");   // odd count
  EXPECT_DEATH((void)platform.acquire(0, 10), "precondition");  // beyond pool
  platform.acquire(0, 4);
  EXPECT_DEATH((void)platform.release(0, 6), "precondition");  // > held
  EXPECT_DEATH((void)platform.owner(99), "precondition");
  EXPECT_DEATH(Platform(7), "precondition");  // odd platform
}

TEST(Platform, DeterministicAcquisitionOrder) {
  Platform a(8);
  Platform b(8);
  EXPECT_EQ(a.acquire(0, 4), b.acquire(0, 4));
  EXPECT_EQ(a.acquire(1, 2), b.acquire(1, 2));
}

TEST(Platform, GrantAndRevokeMirrorAcquireAndRelease) {
  // The void fast paths must leave the ledger in exactly the state the
  // vector-returning calls produce.
  Platform a(16);
  Platform b(16);
  a.grant(0, 6);
  (void)b.acquire(0, 6);
  a.revoke(0, 2);
  (void)b.release(0, 2);
  a.grant(1, 4);
  (void)b.acquire(1, 4);
  EXPECT_EQ(a.free_count(), b.free_count());
  for (int proc = 0; proc < 16; ++proc)
    EXPECT_EQ(a.owner(proc), b.owner(proc));
  for (int task = 0; task < 2; ++task) {
    const auto ha = a.held_by(task);
    const auto hb = b.held_by(task);
    ASSERT_EQ(ha.size(), hb.size());
    for (std::size_t k = 0; k < ha.size(); ++k) EXPECT_EQ(ha[k], hb[k]);
  }
}

TEST(Platform, PairPartnerIsTheLedgerBuddy) {
  Platform platform(12);
  platform.grant(0, 6);
  platform.grant(1, 4);
  // Pairs are granted together: the partner of the ledger entry at slot k
  // is the entry at slot k ^ 1, in O(1).
  for (int task = 0; task < 2; ++task) {
    const auto held = platform.held_by(task);
    for (std::size_t k = 0; k < held.size(); ++k) {
      EXPECT_EQ(platform.pair_partner(held[k]), held[k ^ 1]);
      // Symmetry: my buddy's buddy is me.
      EXPECT_EQ(platform.pair_partner(platform.pair_partner(held[k])),
                held[k]);
    }
  }
  for (int proc = 0; proc < 12; ++proc)
    if (platform.owner(proc) == kIdle) {
      EXPECT_EQ(platform.pair_partner(proc), kIdle);
    }
}

TEST(Platform, PairPartnerTracksRevokesAndReleases) {
  Platform platform(12);
  platform.grant(0, 6);
  platform.revoke(0, 2);  // drops the newest pair
  const auto held = platform.held_by(0);
  ASSERT_EQ(held.size(), 4u);
  for (std::size_t k = 0; k < held.size(); ++k)
    EXPECT_EQ(platform.pair_partner(held[k]), held[k ^ 1]);
  platform.release_all(0);
  for (int proc = 0; proc < 12; ++proc)
    EXPECT_EQ(platform.pair_partner(proc), kIdle);
}

}  // namespace
}  // namespace coredis::platform
