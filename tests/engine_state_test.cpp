/// White-box tests of the engine's internal state transitions (the exact
/// bookkeeping of Algorithms 2-5): tentative work fractions, commit
/// baselines (tlastR = t + RC + C, plus D + R for the faulty task),
/// blackout exclusion, and the revert-at-no-cost rule of IteratedGreedy.

#include <cmath>
#include <gtest/gtest.h>
#include <memory>
#include <vector>

#include "core/detail/engine_state.hpp"
#include "redistrib/cost.hpp"
#include "speedup/synthetic.hpp"
#include "util/units.hpp"

namespace coredis::core::detail {
namespace {

class EngineStateTest : public ::testing::Test {
 protected:
  EngineStateTest()
      : pack_({{2.0e6}, {1.6e6}, {2.4e6}},
              std::make_shared<speedup::SyntheticModel>(0.08)),
        resilience_({units::years(100.0), 60.0, 1.0,
                     checkpoint::PeriodRule::Young, 0.0}),
        model_(pack_, resilience_),
        platform_(32),
        evaluator_(model_, 32) {
    state_.model = &model_;
    state_.platform = &platform_;
    state_.tr = &evaluator_;
    state_.tasks.resize(3);
    for (int i = 0; i < 3; ++i) {
      TaskRuntime& task = state_.task(i);
      task.sigma = 4;
      task.alpha = 1.0;
      task.tlastR = 0.0;
      task.tU = evaluator_(i, 4, 1.0);
      state_.refresh_projection(i);
      platform_.acquire(i, 4);
    }
  }

  Pack pack_;
  checkpoint::Model resilience_;
  ExpectedTimeModel model_;
  platform::Platform platform_;
  TrEvaluator evaluator_;
  EngineState state_;
};

TEST_F(EngineStateTest, AlphaTentativeBeforeFirstCheckpoint) {
  // Before the first checkpoint completes, all elapsed time is work.
  const double tau = model_.period(0, 4);
  const double t = 0.5 * tau;
  const double expected = 1.0 - t / model_.fault_free_time(0, 4);
  EXPECT_NEAR(state_.alpha_tentative(0, t), expected, 1e-12);
}

TEST_F(EngineStateTest, AlphaTentativeSubtractsCompletedCheckpoints) {
  const double tau = model_.period(0, 4);
  const double cost = model_.checkpoint_cost(0, 4);
  const double t = 1.2 * tau;  // one completed checkpoint, still running
  ASSERT_LT(t, model_.simulated_duration(0, 4, 1.0));
  const double expected = 1.0 - (t - cost) / model_.fault_free_time(0, 4);
  EXPECT_NEAR(state_.alpha_tentative(0, t), expected, 1e-12);
}

TEST_F(EngineStateTest, AlphaTentativeClampedAndBlackoutSafe) {
  // Inside a blackout window (t < tlastR) nothing was computed yet.
  state_.task(0).tlastR = 1000.0;
  EXPECT_DOUBLE_EQ(state_.alpha_tentative(0, 500.0), 1.0);
  // Far beyond the projected end, the fraction floors at 0.
  EXPECT_DOUBLE_EQ(state_.alpha_tentative(0, 1.0e12), 0.0);
}

TEST_F(EngineStateTest, IncludedFollowsBlackoutAndLifecycleRules) {
  EXPECT_TRUE(state_.included(0, 10.0));
  state_.task(0).tlastR = 20.0;
  EXPECT_FALSE(state_.included(0, 10.0));  // t <= tlastR: excluded
  EXPECT_FALSE(state_.included(0, 20.0));  // boundary is excluded too
  EXPECT_TRUE(state_.included(0, 20.5));
  state_.task(1).done = true;
  EXPECT_FALSE(state_.included(1, 100.0));
  state_.task(2).released = true;
  EXPECT_FALSE(state_.included(2, 100.0));
}

TEST_F(EngineStateTest, CommitGrowthPaysCostAndCheckpoint) {
  const double t = 5000.0;
  std::vector<int> new_sigma{8, 4, 4};
  std::vector<double> alpha_t{0.9, 1.0, 1.0};
  state_.commit(t, /*faulty=*/-1, new_sigma, alpha_t);

  const TaskRuntime& task = state_.task(0);
  EXPECT_EQ(task.sigma, 8);
  EXPECT_DOUBLE_EQ(task.alpha, 0.9);
  const double rc = redistrib::cost(4, 8, pack_.task(0).data_size);
  EXPECT_DOUBLE_EQ(task.tlastR, t + rc + model_.checkpoint_cost(0, 8));
  EXPECT_DOUBLE_EQ(task.tU, task.tlastR + evaluator_(0, 8, 0.9));
  EXPECT_DOUBLE_EQ(task.proj_end,
                   task.tlastR + model_.simulated_duration(0, 8, 0.9));
  EXPECT_EQ(platform_.allocated(0), 8);
  EXPECT_EQ(state_.redistributions, 1);
  EXPECT_DOUBLE_EQ(state_.redistribution_cost_total, rc);
  // One initial checkpoint on the new allocation, plus the periodic ones
  // completed before t (none here: t << tau).
  EXPECT_EQ(state_.checkpoints_taken, 1);
}

TEST_F(EngineStateTest, CommitFaultyTaskKeepsDowntimeRecoveryBase) {
  // Simulate Algorithm 2's rollback on task 1, then a redistribution.
  const double t = 3000.0;
  TaskRuntime& faulty = state_.task(1);
  faulty.alpha = 0.8;
  faulty.tlastR = t + resilience_.downtime() + model_.recovery_time(1, 4);
  const double rollback_base = faulty.tlastR;

  std::vector<int> new_sigma{4, 8, 4};
  std::vector<double> alpha_t{1.0, 0.8, 1.0};
  state_.commit(t, /*faulty=*/1, new_sigma, alpha_t);

  const double rc = redistrib::cost(4, 8, pack_.task(1).data_size);
  // Section 3.3.2: tlastR = t + D + R + RC + C for the struck task.
  EXPECT_DOUBLE_EQ(faulty.tlastR,
                   rollback_base + rc + model_.checkpoint_cost(1, 8));
  EXPECT_EQ(faulty.sigma, 8);
}

TEST_F(EngineStateTest, CommitShrinksBeforeGrowing) {
  // Moving one pair from task 2 to task 0 through an empty pool: the
  // release must happen before the acquisition or the pool underflows.
  ASSERT_EQ(platform_.free_count(), 32 - 12);
  platform_.acquire(5, 20);  // exhaust the pool
  ASSERT_EQ(platform_.free_count(), 0);
  std::vector<int> new_sigma{6, 4, 2};
  std::vector<double> alpha_t{1.0, 1.0, 1.0};
  state_.commit(100.0, -1, new_sigma, alpha_t);
  EXPECT_EQ(platform_.allocated(0), 6);
  EXPECT_EQ(platform_.allocated(2), 2);
  EXPECT_EQ(platform_.free_count(), 0);
}

TEST_F(EngineStateTest, CommitIgnoresUnchangedDoneAndReleased) {
  state_.task(1).done = true;
  state_.task(2).released = true;
  std::vector<int> new_sigma{4, 8, 8};  // changes on ineligible tasks
  std::vector<double> alpha_t{1.0, 1.0, 1.0};
  state_.commit(50.0, -1, new_sigma, alpha_t);
  EXPECT_EQ(state_.redistributions, 0);
  EXPECT_EQ(state_.task(1).sigma, 4);
  EXPECT_EQ(state_.task(2).sigma, 4);
}

TEST_F(EngineStateTest, EndLocalGrantsPairsToLongestTask) {
  // Free 8 processors; the longest task (largest tU) must receive pairs.
  int longest = 0;
  for (int i = 1; i < 3; ++i)
    if (state_.task(i).tU > state_.task(longest).tU) longest = i;
  const int before = state_.task(longest).sigma;
  const bool changed = end_local(state_, 1000.0);
  EXPECT_TRUE(changed);
  EXPECT_GT(state_.task(longest).sigma, before);
  // Conservation: nobody shrank, pool did not underflow.
  int total = 0;
  for (int i = 0; i < 3; ++i) {
    EXPECT_GE(state_.task(i).sigma, before == 4 ? 4 : 2);
    total += state_.task(i).sigma;
  }
  EXPECT_LE(total, 32 - platform_.allocated(5));
}

TEST_F(EngineStateTest, IteratedGreedyRevertingToOriginalCostsNothing) {
  // With no faulty task and a balanced pack, IteratedGreedy should
  // rebuild into (close to) the same allocation; tasks whose final sigma
  // equals the original must not pay any redistribution.
  // Use zero free processors so nothing can actually improve.
  platform_.acquire(7, platform_.free_count());
  const double tu_before[3] = {state_.task(0).tU, state_.task(1).tU,
                               state_.task(2).tU};
  const bool changed = iterated_greedy(state_, 2000.0, /*faulty=*/-1);
  for (int i = 0; i < 3; ++i) {
    if (state_.task(i).sigma == 4) {
      EXPECT_DOUBLE_EQ(state_.task(i).tU, tu_before[i]) << "task " << i;
    }
  }
  // Whatever happened, total redistribution cost only counts real moves.
  if (!changed) {
    EXPECT_EQ(state_.redistributions, 0);
  }
}

TEST_F(EngineStateTest, ShortestTasksFirstStealsFromShortest) {
  // Give the platform no free processors; make task 0 the faulty longest
  // and task 1 clearly the shortest with spare pairs.
  platform_.acquire(7, platform_.free_count());
  TaskRuntime& faulty = state_.task(0);
  faulty.alpha = 1.0;
  faulty.tlastR = 1.0e6 + resilience_.downtime() + model_.recovery_time(0, 4);
  faulty.tU = faulty.tlastR + evaluator_(0, 4, 1.0);

  TaskRuntime& shortest = state_.task(1);
  shortest.alpha = 0.05;  // nearly done
  shortest.tU = 1.0e6 + evaluator_(1, 4, 0.05);

  const int faulty_before = faulty.sigma;
  const int victim_before = shortest.sigma;
  const bool changed = shortest_tasks_first(state_, 1.0e6, 0);
  if (changed) {
    EXPECT_GT(faulty.sigma, faulty_before);
    EXPECT_LT(shortest.sigma, victim_before);
    EXPECT_GE(shortest.sigma, 2);
    EXPECT_EQ(faulty.sigma + state_.task(1).sigma + state_.task(2).sigma, 12);
  }
}

TEST_F(EngineStateTest, ZeroRedistributionCostFlagDropsRc) {
  state_.zero_redistribution_cost = true;
  EXPECT_DOUBLE_EQ(state_.redistribution_cost(0, 8), 0.0);
  state_.zero_redistribution_cost = false;
  EXPECT_GT(state_.redistribution_cost(0, 8), 0.0);
}

TEST_F(EngineStateTest, EventIndexAgreesWithLinearScans) {
  // Same state, queried with and without the index, through a sequence of
  // projection updates and completions.
  EXPECT_EQ(state_.use_event_index, false);
  const int linear_first = state_.earliest_unfinished();
  const double linear_longest = state_.longest_expected_finish();

  state_.build_event_index();
  EXPECT_EQ(state_.earliest_unfinished(), linear_first);
  EXPECT_DOUBLE_EQ(state_.longest_expected_finish(), linear_longest);

  // Push task 0's projection way out and its tU up; the index must track.
  state_.task(0).tlastR = 5.0e7;
  state_.task(0).tU = 9.0e7;
  state_.refresh_projection(0);
  state_.use_event_index = false;
  const int scan_first = state_.earliest_unfinished();
  const double scan_longest = state_.longest_expected_finish();
  state_.use_event_index = true;
  EXPECT_EQ(state_.earliest_unfinished(), scan_first);
  EXPECT_DOUBLE_EQ(state_.longest_expected_finish(), scan_longest);

  // Completion removes the task from both queues.
  state_.mark_done(scan_first);
  state_.use_event_index = false;
  const int next_first = state_.earliest_unfinished();
  state_.use_event_index = true;
  EXPECT_EQ(state_.earliest_unfinished(), next_first);
}

TEST_F(EngineStateTest, UnfinishedEndingByMatchesLinearFilter) {
  state_.build_event_index();
  const double bound = state_.task(1).proj_end;  // includes the boundary
  std::vector<int> indexed;
  state_.unfinished_ending_by(bound, /*except=*/2, indexed);
  state_.use_event_index = false;
  std::vector<int> linear;
  state_.unfinished_ending_by(bound, /*except=*/2, linear);
  EXPECT_EQ(indexed, linear);
  EXPECT_FALSE(indexed.empty());
}

}  // namespace
}  // namespace coredis::core::detail
