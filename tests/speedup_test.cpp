/// Tests of the speedup profiles, including the model assumptions the
/// scheduler depends on (section 3.2): execution time non-increasing in q
/// and work q * t(m, q) non-decreasing in q — checked as properties over a
/// parameter sweep.

#include <cmath>
#include <gtest/gtest.h>
#include <memory>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "speedup/amdahl.hpp"
#include "speedup/presets.hpp"
#include "speedup/synthetic.hpp"
#include "speedup/table_profile.hpp"

namespace coredis::speedup {
namespace {

TEST(SyntheticModel, MatchesPaperFormula) {
  const SyntheticModel model(0.08);
  const double m = 2.0e6;
  const double log2m = std::log2(m);
  const double t1 = 2.0 * m * log2m;
  EXPECT_NEAR(model.time(m, 1), t1 + m * log2m, 1e-6 * t1);
  const double q = 16.0;
  const double expected = 0.08 * t1 + 0.92 * t1 / q + (m / q) * log2m;
  EXPECT_NEAR(model.time(m, 16), expected, 1e-9 * expected);
}

TEST(SyntheticModel, SequentialFractionBounds) {
  EXPECT_NO_THROW(SyntheticModel(0.0));
  EXPECT_NO_THROW(SyntheticModel(1.0));
  EXPECT_DEATH(SyntheticModel(-0.1), "precondition");
  EXPECT_DEATH(SyntheticModel(1.1), "precondition");
}

TEST(SyntheticModel, FullySequentialDoesNotScale) {
  const SyntheticModel model(1.0);
  const double m = 1.0e6;
  // With f = 1 only the communication term shrinks with q.
  EXPECT_GT(model.time(m, 64), 2.0 * m * std::log2(m));
}

TEST(AmdahlModel, AsymptoteIsSequentialFraction) {
  const AmdahlModel model(0.1, 2.0);
  const double m = 1.0e6;
  const double t1 = model.time(m, 1);
  EXPECT_NEAR(model.time(m, 100000), 0.1 * t1, 0.01 * t1);
}

struct ModelCase {
  const char* name;
  std::shared_ptr<const Model> model;
};

class SpeedupProperties
    : public ::testing::TestWithParam<std::tuple<int, double>> {
 protected:
  static std::vector<ModelCase> models() {
    return {
        {"synthetic_f008", std::make_shared<SyntheticModel>(0.08)},
        {"synthetic_f0", std::make_shared<SyntheticModel>(0.0)},
        {"synthetic_f05", std::make_shared<SyntheticModel>(0.5)},
        {"amdahl", std::make_shared<AmdahlModel>(0.08)},
    };
  }
};

TEST_P(SpeedupProperties, TimeNonIncreasingInProcessors) {
  const auto [q, m] = GetParam();
  for (const ModelCase& c : models()) {
    EXPECT_LE(c.model->time(m, q + 1), c.model->time(m, q) * (1.0 + 1e-12))
        << c.name << " q=" << q << " m=" << m;
  }
}

TEST_P(SpeedupProperties, WorkNonDecreasingInProcessors) {
  const auto [q, m] = GetParam();
  for (const ModelCase& c : models()) {
    const double work_q = q * c.model->time(m, q);
    const double work_q1 = (q + 1) * c.model->time(m, q + 1);
    EXPECT_GE(work_q1, work_q * (1.0 - 1e-12))
        << c.name << " q=" << q << " m=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpeedupProperties,
    ::testing::Combine(::testing::Values(1, 2, 3, 7, 64, 511, 4999),
                       ::testing::Values(1.5e3, 1.5e6, 2.5e6, 1.0e8)));

TEST(TableModel, InterpolatesAndClamps) {
  const TableModel model(1000.0, {{1, 100.0}, {2, 60.0}, {4, 40.0}});
  EXPECT_DOUBLE_EQ(model.time(1000.0, 1), 100.0);
  EXPECT_DOUBLE_EQ(model.time(1000.0, 4), 40.0);
  // Between samples: harmonic interpolation stays between neighbors.
  const double t3 = model.time(1000.0, 3);
  EXPECT_LT(t3, 60.0);
  EXPECT_GT(t3, 40.0);
  // Beyond the table: clamp, no extrapolated speedup.
  EXPECT_DOUBLE_EQ(model.time(1000.0, 64), 40.0);
  EXPECT_EQ(model.max_sampled_processors(), 4);
}

TEST(TableModel, WorkScalesWithProblemSize) {
  const TableModel model(1000.0, {{1, 100.0}, {2, 60.0}});
  const double scale = (2000.0 * std::log2(2000.0)) / (1000.0 * std::log2(1000.0));
  EXPECT_NEAR(model.time(2000.0, 1), 100.0 * scale, 1e-9);
}

TEST(TableModel, RepairsNonMonotoneSamples) {
  // 8 processors slower than 4: repaired down to the 4-processor time.
  const TableModel model(1000.0, {{1, 100.0}, {4, 30.0}, {8, 45.0}});
  EXPECT_DOUBLE_EQ(model.time(1000.0, 8), 30.0);
}

TEST(TableModel, RepairsSuperLinearSpeedup) {
  // 2 processors, 4x faster: super-linear, flattened to linear work.
  const TableModel model(1000.0, {{1, 100.0}, {2, 25.0}});
  EXPECT_DOUBLE_EQ(model.time(1000.0, 2), 50.0);
}

TEST(Presets, AllPresetsBuildAndRespectModelAssumptions) {
  const double m = 1.5e6;
  for (const std::string& name : preset_names()) {
    const ModelPtr model = make_preset(name, m);
    ASSERT_NE(model, nullptr) << name;
    EXPECT_DOUBLE_EQ(model->time(m, 1), 2.0 * m * std::log2(m)) << name;
    for (int q = 1; q < 256; ++q) {
      EXPECT_LE(model->time(m, q + 1), model->time(m, q) * (1.0 + 1e-9))
          << name << " q=" << q;
      EXPECT_GE((q + 1) * model->time(m, q + 1),
                q * model->time(m, q) * (1.0 - 1e-9))
          << name << " q=" << q;
    }
  }
}

TEST(Presets, ArchetypesAreOrderedByScalability) {
  const double m = 1.0e6;
  const ModelPtr md = make_preset("minimd_like", m);
  const ModelPtr cg = make_preset("hpccg_like", m);
  // Same sequential time, very different 256-core performance.
  EXPECT_DOUBLE_EQ(md->time(m, 1), cg->time(m, 1));
  EXPECT_LT(md->time(m, 256), 0.5 * cg->time(m, 256));
}

TEST(Presets, UnknownNameThrows) {
  EXPECT_THROW((void)make_preset("nonexistent", 1.0e6),
               std::invalid_argument);
}

TEST(TableModel, RejectsBadInput) {
  EXPECT_THROW(TableModel(1000.0, {}), std::invalid_argument);
  EXPECT_THROW(TableModel(1000.0, {{2, 10.0}}), std::invalid_argument);
  EXPECT_THROW(TableModel(1000.0, {{1, 10.0}, {1, 9.0}}),
               std::invalid_argument);
  EXPECT_THROW(TableModel(1000.0, {{1, -1.0}}), std::invalid_argument);
}

}  // namespace
}  // namespace coredis::speedup
