/// Golden tests for the report renderers (exp/report.hpp): the
/// normalized/makespan tables, the ASCII plot, the check list, the sweep
/// CSV, and the EXPERIMENTS.md check-record pipeline — previously only
/// exercised indirectly through the fig binaries.

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/report.hpp"

namespace coredis::exp {
namespace {

/// Deterministic two-point, two-config sweep with hand-computable means:
/// normalized IG = {0.80, 0.82} -> 0.81 at x=100, {0.70, 0.72} -> 0.71
/// at x=200.
Sweep make_sweep() {
  Sweep sweep;
  sweep.x_label = "#procs";
  sweep.x = {100.0, 200.0};
  for (int i = 0; i < 2; ++i) {
    PointResult point;
    ConfigOutcome base;
    base.name = "baseline";
    ConfigOutcome ig;
    ig.name = "IG-EndLocal";
    for (int r = 0; r < 2; ++r) {
      base.normalized.add(1.0);
      base.makespan.add(1000.0 + 100.0 * i + 10.0 * r);
      ig.normalized.add(0.8 - 0.1 * i + 0.02 * r);
      ig.makespan.add(800.0 + 50.0 * i + 10.0 * r);
    }
    point.configs = {base, ig};
    sweep.points.push_back(point);
  }
  return sweep;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file) << "cannot open " << path;
  std::ostringstream text;
  text << file.rdbuf();
  return text.str();
}

TEST(Report, NormalizedTableGolden) {
  const std::string expected =
      "  #procs  baseline  IG-EndLocal\n"
      "-------------------------------\n"
      "100.0000    1.0000       0.8100\n"
      "200.0000    1.0000       0.7100\n";
  EXPECT_EQ(render_normalized_table(make_sweep()), expected);
}

TEST(Report, NormalizedTableHonorsPrecision) {
  const std::string expected =
      "#procs  baseline  IG-EndLocal\n"
      "-----------------------------\n"
      " 100.0       1.0          0.8\n"
      " 200.0       1.0          0.7\n";
  EXPECT_EQ(render_normalized_table(make_sweep(), 1), expected);
}

TEST(Report, MakespanTableGolden) {
  const std::string expected =
      "#procs  baseline  IG-EndLocal\n"
      "-----------------------------\n"
      "   100      1005          805\n"
      "   200      1105          855\n";
  EXPECT_EQ(render_makespan_table(make_sweep()), expected);
}

TEST(Report, NormalizedPlotShapeAndLegend) {
  const std::string plot = render_normalized_plot(make_sweep());
  // Deterministic: same sweep, same bytes.
  EXPECT_EQ(plot, render_normalized_plot(make_sweep()));
  std::vector<std::string> lines;
  std::istringstream stream(plot);
  std::string line;
  while (std::getline(stream, line)) lines.push_back(line);
  ASSERT_GE(lines.size(), 5u);
  // The paper's normalized band is the default frame.
  EXPECT_EQ(lines.front().rfind("1.05 |", 0), 0u) << plot;
  // Legend lines are exact; the axis line names the sweep variable and
  // its bounds.
  EXPECT_EQ(lines[lines.size() - 2], "  * = baseline") << plot;
  EXPECT_EQ(lines.back(), "  + = IG-EndLocal") << plot;
  const std::string& axis = lines[lines.size() - 3];
  EXPECT_NE(axis.find("#procs"), std::string::npos) << plot;
  EXPECT_NE(axis.find("100"), std::string::npos) << plot;
  EXPECT_NE(axis.find("200"), std::string::npos) << plot;
  // The baseline series sits pinned at 1.0: one full row of '*'.
  bool baseline_row = false;
  for (const std::string& row : lines)
    baseline_row = baseline_row || row.find("****") != std::string::npos;
  EXPECT_TRUE(baseline_row) << plot;
}

TEST(Report, ChecksRenderGolden) {
  const std::vector<ShapeCheck> checks{{"first check", true, "a=1 b=2"},
                                       {"second check", false, ""}};
  EXPECT_EQ(render_checks(checks),
            "[PASS] first check  (a=1 b=2)\n"
            "[FAIL] second check\n");
  EXPECT_EQ(render_checks({}), "");
}

TEST(Report, MeanAndPointAccessors) {
  const Sweep sweep = make_sweep();
  EXPECT_DOUBLE_EQ(normalized_at(sweep, 0, 1), 0.81);
  EXPECT_DOUBLE_EQ(normalized_at(sweep, 1, 1), 0.71);
  EXPECT_DOUBLE_EQ(mean_normalized(sweep, 0), 1.0);
  EXPECT_DOUBLE_EQ(mean_normalized(sweep, 1), 0.76);
}

TEST(Report, SweepCsvRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() /
                    "coredis_report_test_sweep.csv";
  std::filesystem::remove(path);
  save_sweep_csv(make_sweep(), path.string());
  const std::string expected =
      "#procs,baseline (normalized),baseline (ci95),baseline (makespan s),"
      "IG-EndLocal (normalized),IG-EndLocal (ci95),IG-EndLocal (makespan s)\n"
      "100,1,0,1005,0.81,0.0196,805\n"
      "200,1,0,1105,0.71,0.0196,855\n";
  EXPECT_EQ(read_file(path), expected);
  std::filesystem::remove(path);
}

TEST(Report, CheckRecordsRoundTripWithEscaping) {
  const auto path = std::filesystem::temp_directory_path() /
                    "coredis_report_test_checks.jsonl";
  std::filesystem::remove(path);
  CheckReport first;
  first.figure = "fig99_demo";
  first.title = "Demo \"quoted\" panel";
  first.command = "fig99_demo --runs 2 --scenario a\\b.txt";
  first.checks = {{"gain\nholds", true, "x=1"}, {"plain", false, ""}};
  append_check_records(path.string(), first);
  CheckReport second;
  second.figure = "fig99_demo";
  second.title = "Another panel";  // new title => new report group
  second.command = first.command;
  second.checks = {{"tail check", true, "detail"}};
  append_check_records(path.string(), second);

  const std::vector<CheckReport> loaded = load_check_records(path.string());
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].figure, first.figure);
  EXPECT_EQ(loaded[0].title, first.title);
  EXPECT_EQ(loaded[0].command, first.command);
  ASSERT_EQ(loaded[0].checks.size(), 2u);
  EXPECT_EQ(loaded[0].checks[0].description, "gain\nholds");
  EXPECT_TRUE(loaded[0].checks[0].pass);
  EXPECT_EQ(loaded[0].checks[0].detail, "x=1");
  EXPECT_FALSE(loaded[0].checks[1].pass);
  EXPECT_EQ(loaded[1].title, "Another panel");
  ASSERT_EQ(loaded[1].checks.size(), 1u);
  std::filesystem::remove(path);
}

TEST(Report, CheckRecordsRejectMalformedLines) {
  const auto path = std::filesystem::temp_directory_path() /
                    "coredis_report_test_badchecks.jsonl";
  {
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    file << "{\"figure\":\"f\",garbage\n";
  }
  try {
    (void)load_check_records(path.string());
    FAIL() << "must throw";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find(":1"), std::string::npos)
        << error.what();
  }
  EXPECT_THROW((void)load_check_records("/nonexistent/coredis_checks"),
               std::runtime_error);
  std::filesystem::remove(path);
}

/// Minimal bench_json outputs for the trend renderer: the seed machine
/// is twice as fast (calibration 0.005 vs 0.010), so its 10 ms run
/// normalizes to 20 ms on the latest machine.
BenchBaseline seed_baseline() {
  return {"BENCH_PR2",
          "{\n"
          "  \"calibration_seconds\": 0.005,\n"
          "  \"scenarios\": [\n"
          "    { \"name\": \"smoke_a\", \"seconds_per_run_min\": 0.010 }\n"
          "  ]\n"
          "}\n",
          0.005};
}

BenchBaseline latest_baseline() {
  return {"BENCH_PR6",
          "{\n"
          "  \"calibration_seconds\": 0.010,\n"
          "  \"scenarios\": [\n"
          "    { \"name\": \"smoke_a\", \"seconds_per_run_min\": 0.012 },\n"
          "    { \"name\": \"smoke_b\", \"seconds_per_run_min\": 0.020 }\n"
          "  ]\n"
          "}\n",
          0.010};
}

TEST(Report, BenchTrendGolden) {
  // smoke_a: 10 ms at cal 0.005 -> 20 ms normalized, vs 12 ms -> 1.67x.
  // smoke_b only exists in the latest file, so its speedup is "-". The
  // machine-probe table shows the calibrations behind the
  // normalization; neither file records the PR 10 membw probe, so that
  // column is all "-".
  const std::string expected =
      "scenario  BENCH_PR2 (ms)  BENCH_PR6 (ms)  speedup\n"
      "-------------------------------------------------\n"
      " smoke_a           20.00           12.00    1.67x\n"
      " smoke_b               -           20.00        -\n"
      "\n"
      "     file  compute probe (ms)  membw probe (ms)\n"
      "-----------------------------------------------\n"
      "BENCH_PR2                5.00                 -\n"
      "BENCH_PR6               10.00                 -\n";
  EXPECT_EQ(render_bench_trend({seed_baseline(), latest_baseline()}),
            expected);
}

TEST(Report, BenchTrendShowsTheMembwProbeWhenRecorded) {
  // A PR 10-era baseline carries both probes; its membw cell renders in
  // ms like the compute one while the pre-PR10 file keeps "-".
  BenchBaseline with_membw = latest_baseline();
  with_membw.label = "BENCH_PR10";
  with_membw.mem_calibration = 0.0025;
  const std::string rendered =
      render_bench_trend({seed_baseline(), with_membw});
  EXPECT_NE(rendered.find("BENCH_PR10               10.00              2.50"),
            std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find(" BENCH_PR2                5.00                 -"),
            std::string::npos)
      << rendered;
}

TEST(Report, BenchTrendAppendsThePeakRssSeriesWhenRecorded) {
  // Only the newest file records peak_rss_kb (the field arrived with the
  // PR 7 bench schema): the timing table is unchanged and the RSS table
  // shows "-" for the older file, skipping scenarios nobody measured.
  BenchBaseline with_rss{"BENCH_PR7",
                         "{\n"
                         "  \"calibration_seconds\": 0.010,\n"
                         "  \"scenarios\": [\n"
                         "    { \"name\": \"smoke_a\", "
                         "\"seconds_per_run_min\": 0.012, "
                         "\"peak_rss_kb\": 10240 },\n"
                         "    { \"name\": \"grid_spill\", "
                         "\"seconds_per_run_min\": 0.500, "
                         "\"peak_rss_kb\": 39936 }\n"
                         "  ]\n"
                         "}\n",
                         0.010};
  const std::string expected =
      "  scenario  BENCH_PR2 (ms)  BENCH_PR7 (ms)  speedup\n"
      "---------------------------------------------------\n"
      "   smoke_a           20.00           12.00    1.67x\n"
      "grid_spill               -          500.00        -\n"
      "\n"
      "  scenario  BENCH_PR2 (peak MB)  BENCH_PR7 (peak MB)\n"
      "----------------------------------------------------\n"
      "   smoke_a                    -                 10.0\n"
      "grid_spill                    -                 39.0\n"
      "\n"
      "     file  compute probe (ms)  membw probe (ms)\n"
      "-----------------------------------------------\n"
      "BENCH_PR2                5.00                 -\n"
      "BENCH_PR7               10.00                 -\n";
  EXPECT_EQ(render_bench_trend({seed_baseline(), with_rss}), expected);
}

TEST(Report, BenchTrendSeedOnlyAndEmptyListsAreNotErrors) {
  // One file: values but no trend yet (the machine table still shows
  // its probe).
  const std::string seed_only =
      "scenario  BENCH_PR2 (ms)  speedup\n"
      "---------------------------------\n"
      " smoke_a           10.00        -\n"
      "\n"
      "     file  compute probe (ms)  membw probe (ms)\n"
      "-----------------------------------------------\n"
      "BENCH_PR2                5.00                 -\n";
  EXPECT_EQ(render_bench_trend({seed_baseline()}), seed_only);
  // No files at all: the header-only seed table, not a throw — the CLI
  // leans on this to keep `bench_trend` usable on a baseline-less clone.
  EXPECT_EQ(render_bench_trend({}),
            "scenario  speedup\n"
            "-----------------\n");
}

TEST(Report, ExperimentsMarkdownGolden) {
  CheckReport pass;
  pass.figure = "fig07_impact_n";
  pass.title = "Figure 7";
  pass.command = "fig07_impact_n --runs 2";
  pass.checks = {{"gain grows", true, "n_max=0.55"}, {"IG beats STF", true, ""}};
  CheckReport fail;
  fail.figure = "fig08_impact_p";
  fail.title = "Figure 8";
  fail.command = "fig08_impact_p --runs 2";
  fail.checks = {{"gain shrinks", false, "worst=0.99"}};
  const std::string doc = render_experiments_markdown({pass, fail});

  // Stable: a pure function of its input.
  EXPECT_EQ(doc, render_experiments_markdown({pass, fail}));
  EXPECT_NE(doc.find("# EXPERIMENTS — reproduction status"),
            std::string::npos);
  EXPECT_NE(doc.find("Generated by tools/coredis_report"), std::string::npos);
  EXPECT_NE(doc.find("2 experiments, 1 fully passing.\n"), std::string::npos);
  EXPECT_NE(doc.find("| figure | experiment | command | checks | status |\n"),
            std::string::npos);
  EXPECT_NE(
      doc.find("| fig07_impact_n | Figure 7 | `fig07_impact_n --runs 2` | "
               "2/2 | PASS |\n"),
      std::string::npos);
  EXPECT_NE(
      doc.find("| fig08_impact_p | Figure 8 | `fig08_impact_p --runs 2` | "
               "0/1 | FAIL |\n"),
      std::string::npos);
  EXPECT_NE(doc.find("## fig07_impact_n — Figure 7\n"), std::string::npos);
  EXPECT_NE(doc.find("- [PASS] gain grows — n_max=0.55\n"), std::string::npos);
  EXPECT_NE(doc.find("- [PASS] IG beats STF\n"), std::string::npos);
  EXPECT_NE(doc.find("- [FAIL] gain shrinks — worst=0.99\n"),
            std::string::npos);
}

}  // namespace
}  // namespace coredis::exp
