/// Behavioral tests of the redistribution heuristics (Algorithms 3-5):
/// end-of-task redistribution accelerates the remaining tasks, failure
/// heuristics help the struck task, the commit rule never accepts a
/// predicted regression, and the engine invariants (even allocations,
/// conservation) hold throughout.

#include <cstdint>
#include <gtest/gtest.h>
#include <memory>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "core/optimal_schedule.hpp"
#include "fault/exponential.hpp"
#include "fault/trace.hpp"
#include "speedup/synthetic.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace coredis::core {
namespace {

Pack make_pack(std::vector<double> sizes) {
  std::vector<TaskSpec> tasks;
  for (double m : sizes) tasks.push_back({m});
  return Pack(std::move(tasks), std::make_shared<speedup::SyntheticModel>(0.08));
}

checkpoint::Model faulty_model(double mtbf_years) {
  return checkpoint::Model(
      {units::years(mtbf_years), 60.0, 1.0, checkpoint::PeriodRule::Young, 0.0});
}

checkpoint::Model fault_free_model() {
  return checkpoint::Model({0.0, 60.0, 1.0, checkpoint::PeriodRule::Young, 0.0});
}

/// Fault-free gain of the end-of-task policies (the Figure 5 mechanism):
/// a short task ends, its processors accelerate the longer ones.
class EndPolicyGain : public ::testing::TestWithParam<EndPolicy> {};

TEST_P(EndPolicyGain, FaultFreeRedistributionNeverHurtsAndUsuallyHelps) {
  const Pack pack = make_pack({2.5e6, 4.0e5, 2.3e6, 3.0e5, 1.8e6});
  const checkpoint::Model resilience = fault_free_model();
  const int p = 20;

  Engine baseline(pack, resilience, p,
                  {EndPolicy::None, FailurePolicy::None, false});
  Engine with_rc(pack, resilience, p,
                 {GetParam(), FailurePolicy::None, false});
  fault::NullGenerator faults(p);
  const double base = baseline.run(faults).makespan;
  const RunResult redistributed = with_rc.run(faults);

  EXPECT_LE(redistributed.makespan, base * (1.0 + 1e-9));
  EXPECT_LT(redistributed.makespan, base);  // heterogeneous: must help
  EXPECT_GT(redistributed.redistributions, 0);
}

INSTANTIATE_TEST_SUITE_P(BothPolicies, EndPolicyGain,
                         ::testing::Values(EndPolicy::Local,
                                           EndPolicy::Greedy));

TEST(EndPolicies, NoFreeProcessorsMeansNoLocalRedistribution) {
  // Platform exactly 2 per task: when a task ends its pair is released,
  // and EndLocal may grant it; but *before* any completion no
  // redistribution can occur. Exercise via a pack of identical tasks:
  // all end simultaneously, nothing left to accelerate.
  const Pack pack = make_pack({2.0e6, 2.0e6});
  const checkpoint::Model resilience = fault_free_model();
  Engine engine(pack, resilience, 4,
                {EndPolicy::Local, FailurePolicy::None, false});
  fault::NullGenerator faults(4);
  const RunResult result = engine.run(faults);
  EXPECT_EQ(result.redistributions, 0);
}

/// Failure heuristics: with a fault hammering one task, redistribution
/// should beat the no-redistribution baseline on the same trace.
class FailurePolicyGain : public ::testing::TestWithParam<FailurePolicy> {};

TEST_P(FailurePolicyGain, HelpsTheStruckTaskOnAverage) {
  const Pack pack = make_pack({2.0e6, 1.9e6, 2.1e6, 1.8e6});
  const checkpoint::Model resilience = faulty_model(3.0);
  const int p = 32;

  RunningStats base_stats;
  RunningStats heur_stats;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    Engine baseline(pack, resilience, p,
                    {EndPolicy::None, FailurePolicy::None, false});
    Engine heuristic(pack, resilience, p,
                     {EndPolicy::Local, GetParam(), false});
    fault::ExponentialGenerator fa(p, 1.0 / units::years(3.0), Rng(seed));
    fault::ExponentialGenerator fb(p, 1.0 / units::years(3.0), Rng(seed));
    base_stats.add(baseline.run(fa).makespan);
    heur_stats.add(heuristic.run(fb).makespan);
  }
  EXPECT_LT(heur_stats.mean(), base_stats.mean());
}

INSTANTIATE_TEST_SUITE_P(BothPolicies, FailurePolicyGain,
                         ::testing::Values(FailurePolicy::ShortestTasksFirst,
                                           FailurePolicy::IteratedGreedy));

TEST(Heuristics, AllocationsStayEvenAndConserved) {
  // White-box invariant scan via the final allocations and counters over a
  // storm of faults with both aggressive policies.
  const Pack pack = make_pack({2.0e6, 1.5e6, 2.5e6, 1.0e6, 1.7e6});
  const checkpoint::Model resilience = faulty_model(1.0);
  const int p = 30;
  for (FailurePolicy policy :
       {FailurePolicy::ShortestTasksFirst, FailurePolicy::IteratedGreedy}) {
    Engine engine(pack, resilience, p,
                  {EndPolicy::Greedy, policy, false});
    fault::ExponentialGenerator faults(p, 1.0 / units::years(1.0), Rng(3));
    const RunResult result = engine.run(faults);
    for (int sigma : result.final_allocation) {
      EXPECT_GE(sigma, 2);
      EXPECT_EQ(sigma % 2, 0);
    }
    EXPECT_GT(result.makespan, 0.0);
  }
}

TEST(Heuristics, RedistributionCostIsAccounted) {
  const Pack pack = make_pack({2.5e6, 4.0e5, 2.3e6});
  const checkpoint::Model resilience = fault_free_model();
  Engine engine(pack, resilience, 12,
                {EndPolicy::Local, FailurePolicy::None, false});
  fault::NullGenerator faults(12);
  const RunResult result = engine.run(faults);
  if (result.redistributions > 0) {
    EXPECT_GT(result.redistribution_cost, 0.0);
  }
}

TEST(Heuristics, IteratedGreedyBeatsShortestTasksFirstAtModerateMtbf) {
  // Section 6.2 finding: IG is the better heuristic except at very small
  // MTBF. Check the mean over a handful of seeds at MTBF 25y per
  // processor on a mid-size pack.
  const Pack pack = make_pack(
      {2.0e6, 1.9e6, 2.1e6, 1.8e6, 2.2e6, 1.6e6, 2.4e6, 1.7e6});
  const checkpoint::Model resilience = faulty_model(25.0);
  const int p = 64;
  RunningStats ig;
  RunningStats stf;
  for (std::uint64_t seed = 100; seed < 112; ++seed) {
    Engine a(pack, resilience, p,
             {EndPolicy::Local, FailurePolicy::IteratedGreedy, false});
    Engine b(pack, resilience, p,
             {EndPolicy::Local, FailurePolicy::ShortestTasksFirst, false});
    fault::ExponentialGenerator fa(p, 1.0 / units::years(25.0), Rng(seed));
    fault::ExponentialGenerator fb(p, 1.0 / units::years(25.0), Rng(seed));
    ig.add(a.run(fa).makespan);
    stf.add(b.run(fb).makespan);
  }
  EXPECT_LE(ig.mean(), stf.mean() * 1.02);  // IG at least on par
}

TEST(Heuristics, FaultOnShortTaskDoesNotTriggerRedistribution) {
  // A fault on a task that is *not* the longest must leave the allocation
  // untouched (Algorithm 2 line 30).
  const Pack pack = make_pack({2.5e6, 5.0e5});
  const checkpoint::Model resilience = faulty_model(100.0);
  const ExpectedTimeModel model(pack, resilience);
  Engine engine(pack, resilience, 8,
                {EndPolicy::None, FailurePolicy::IteratedGreedy, true});
  // Strike the short task early: its rollback cannot make it the longest.
  // Algorithm 1 gives the big task more processors; the short task holds
  // the last pair. Find a processor of the short task via the trace: use
  // a fault on every processor in turn and check none redistributes while
  // the faulty task is not the longest.
  const auto sigma = optimal_schedule(model, 8);
  const int short_task_procs = sigma[1];
  ASSERT_GE(short_task_procs, 2);
  fault::TraceGenerator faults(8, {{1000.0, 7}});  // last processor: short task
  const RunResult result = engine.run(faults);
  if (result.faults_effective == 1 && !result.trace.empty() &&
      result.trace.front().task == 1) {
    EXPECT_FALSE(result.trace.front().redistributed);
  }
}

}  // namespace
}  // namespace coredis::core
