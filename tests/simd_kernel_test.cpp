/// Bitwise-equivalence wall for the vector Eq. 4 pass (DESIGN.md
/// section 6.6): the SoA/SIMD probe_many and the cross-task batched
/// probe_tasks must produce the exact bits of their scalar references —
/// probe_many_reference and expected_time_raw — over randomized grids,
/// fault-aware and fault-free resilience, denormal/extreme lambda·tau
/// corners, and every residual vector-tail length. The same contract is
/// asserted against the detail kernels directly on hand-built lanes.
///
/// Every test here passes on any build: when the vector path is not
/// live (non-x86-64 build, unsupported CPU, COREDIS_NO_SIMD=1, or a
/// failed process self-check) the batched entry points are the scalar
/// loops and equality is trivial. The suite prints which case it
/// exercised so a CI log shows whether the vector lanes were actually
/// under test.

#include <cmath>
#include <cstring>
#include <gtest/gtest.h>
#include <memory>
#include <utility>
#include <vector>

#include "core/detail/eq4_simd.hpp"
#include "core/expected_time.hpp"
#include "speedup/synthetic.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace coredis::core {
namespace {

Pack make_pack(std::vector<double> sizes) {
  std::vector<TaskSpec> tasks;
  for (double m : sizes) tasks.push_back({m});
  return Pack(std::move(tasks),
              std::make_shared<speedup::SyntheticModel>(0.08));
}

checkpoint::Model faulty_model(double mtbf_years = 100.0) {
  return checkpoint::Model({units::years(mtbf_years), 60.0, 1.0,
                            checkpoint::PeriodRule::Young, 0.0});
}

checkpoint::Model fault_free_model() {
  return checkpoint::Model(
      {0.0, 60.0, 1.0, checkpoint::PeriodRule::Young, 0.0});
}

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0 ||
         (std::isnan(a) && std::isnan(b));
}

TEST(SimdKernel, ReportsDispatchState) {
  // Not an assertion — a breadcrumb: the rest of the suite is exact on
  // every build, and this line records which path it just proved.
  std::printf("eq4 vector path: compiled=%d cpu=%d active=%d\n",
              detail::eq4_simd_compiled() ? 1 : 0,
              detail::eq4_simd_cpu_supported() ? 1 : 0,
              detail::eq4_simd_active() ? 1 : 0);
  SUCCEED();
}

TEST(SimdKernel, ProbeManyMatchesReferenceOnRandomGrids) {
  Rng rng(0xC0FFEEULL);
  std::vector<double> sizes;
  for (int i = 0; i < 24; ++i) sizes.push_back(rng.uniform(1.0e5, 5.0e6));
  const Pack pack = make_pack(std::move(sizes));
  for (const double mtbf_years : {100.0, 5.0, 0.02}) {
    const checkpoint::Model resilience = faulty_model(mtbf_years);
    const ExpectedTimeModel model(pack, resilience);
    for (int task = 0; task < pack.size(); ++task) {
      for (const double alpha :
           {0.0, 1.0, rng.uniform01(), rng.uniform01() * 1e-9}) {
        // Every residual tail length (h_end - h_begin mod lane width)
        // at several offsets, including ranges below the vector
        // threshold and ranges straddling a cold row extension.
        for (const int h_begin : {0, 1, 3, 7}) {
          for (int len = 1; len <= 11; ++len) {
            const int h_end = h_begin + len;
            std::vector<double> got(static_cast<std::size_t>(len), -1.0);
            std::vector<double> want(static_cast<std::size_t>(len), -2.0);
            model.probe_many(task, h_begin, h_end, alpha, got.data());
            model.probe_many_reference(task, h_begin, h_end, alpha,
                                       want.data());
            for (int h = 0; h < len; ++h)
              ASSERT_TRUE(same_bits(got[static_cast<std::size_t>(h)],
                                    want[static_cast<std::size_t>(h)]))
                  << "mtbf=" << mtbf_years << " task=" << task
                  << " alpha=" << alpha << " h=" << h_begin + h << " got "
                  << got[static_cast<std::size_t>(h)] << " want "
                  << want[static_cast<std::size_t>(h)];
          }
        }
      }
    }
  }
}

TEST(SimdKernel, ProbeManyMatchesReferenceFaultFree) {
  const Pack pack = make_pack({2.0e6, 1.1e6, 4.4e6});
  const checkpoint::Model resilience = fault_free_model();
  const ExpectedTimeModel model(pack, resilience);
  for (int task = 0; task < pack.size(); ++task)
    for (const double alpha : {0.0, 0.37, 1.0})
      for (int len = 1; len <= 9; ++len) {
        std::vector<double> got(static_cast<std::size_t>(len));
        std::vector<double> want(static_cast<std::size_t>(len));
        model.probe_many(task, 0, len, alpha, got.data());
        model.probe_many_reference(task, 0, len, alpha, want.data());
        EXPECT_EQ(0, std::memcmp(got.data(), want.data(),
                                 static_cast<std::size_t>(len) *
                                     sizeof(double)));
      }
}

TEST(SimdKernel, ProbeTasksMatchesScalarEq4) {
  Rng rng(0xBADC0DEULL);
  std::vector<double> sizes;
  for (int i = 0; i < 16; ++i) sizes.push_back(rng.uniform(1.0e5, 5.0e6));
  const Pack pack = make_pack(std::move(sizes));
  for (const bool fault_free : {false, true}) {
    const checkpoint::Model resilience =
        fault_free ? fault_free_model() : faulty_model();
    const ExpectedTimeModel model(pack, resilience);
    // Batch sizes cover zero, every tail length and a large batch.
    for (const std::size_t count : {std::size_t{0}, std::size_t{1},
                                    std::size_t{2}, std::size_t{3},
                                    std::size_t{4}, std::size_t{5},
                                    std::size_t{7}, std::size_t{64},
                                    std::size_t{257}}) {
      std::vector<int> tasks(count), js(count);
      std::vector<double> alphas(count), got(count), want(count);
      for (std::size_t k = 0; k < count; ++k) {
        tasks[k] = static_cast<int>(rng.uniform_int(0, 15));
        js[k] = 2 * static_cast<int>(rng.uniform_int(1, 40));
        const std::uint64_t kind = rng.uniform_int(0, 9);
        alphas[k] = kind == 0 ? 0.0 : kind == 1 ? 1.0 : rng.uniform01();
      }
      model.probe_tasks(tasks.data(), js.data(), alphas.data(), count,
                        got.data());
      for (std::size_t k = 0; k < count; ++k)
        want[k] = model.expected_time_raw(tasks[k], js[k], alphas[k]);
      for (std::size_t k = 0; k < count; ++k)
        ASSERT_TRUE(same_bits(got[k], want[k]))
            << "fault_free=" << fault_free << " k=" << k << " task="
            << tasks[k] << " j=" << js[k] << " alpha=" << alphas[k];
    }
  }
}

TEST(SimdKernel, ExtremeMtbfRegimesStayExact) {
  // Push lambda_j * tau toward both ends: near-immortal platforms drive
  // the expm1 argument under the vectorized domain's 2^-54 floor, and
  // minute-scale MTBFs push it past 0.5 ln 2 into the delegated range
  // (and factor toward overflow). The batch must track the scalar bits
  // through every regime, including non-finite results.
  const Pack pack = make_pack({3.0e6, 1.0e3, 8.0e6});
  for (const double mtbf_years : {1.0e7, 1.0e4, 100.0, 1.0, 1.0e-3,
                                  3.0e-6}) {
    const checkpoint::Model resilience = faulty_model(mtbf_years);
    const ExpectedTimeModel model(pack, resilience);
    for (int task = 0; task < pack.size(); ++task)
      for (const double alpha : {1.0, 0.5, 1e-12, 0.0}) {
        constexpr int kLen = 13;
        std::vector<double> got(kLen), want(kLen);
        model.probe_many(task, 0, kLen, alpha, got.data());
        model.probe_many_reference(task, 0, kLen, alpha, want.data());
        for (int h = 0; h < kLen; ++h)
          ASSERT_TRUE(same_bits(got[static_cast<std::size_t>(h)],
                                want[static_cast<std::size_t>(h)]))
              << "mtbf_years=" << mtbf_years << " task=" << task
              << " alpha=" << alpha << " h=" << h;
      }
  }
}

TEST(SimdKernel, DetailKernelsMatchRawKernelOnEdgeLanes) {
  // Direct contract check on the detail entry points with hand-built
  // lanes pinned to the dispatch edges of the vectorized expm1 domain:
  // 2^-54 and 0.5 ln 2 from both sides, denormals, zero, and arguments
  // large enough to overflow. With t_ij = 1 and tau_minus_cost = 2 the
  // kernel reduces to factor * expm1(lambda * alpha), so each lane's
  // lambda *is* the expm1 argument at alpha = 1.
  const double edges[] = {0.0,       5e-324,     1e-308,  0x1p-55,
                          0x1p-54,   0x1.8p-54,  1e-9,    0.1,
                          0.34657,   0.34657359, 0.3466,  1.0,
                          709.0,     710.0,      1e300,   0x1p-53};
  constexpr std::size_t kCount = std::size(edges);
  std::vector<double> t_ij(kCount, 1.0), tmc(kCount, 2.0), lam(kCount),
      fac(kCount, 1.5), emt(kCount, 0.25), alphas(kCount);
  for (std::size_t k = 0; k < kCount; ++k) {
    lam[k] = edges[k];
    alphas[k] = k % 3 == 0 ? 1.0 : 1.0 / static_cast<double>(k + 1);
  }
  const detail::Eq4Lanes lanes{t_ij.data(), tmc.data(), lam.data(),
                               fac.data(), emt.data()};

  const auto want_at = [&](double alpha, std::size_t k) {
    ExpectedTimeModel::Coeffs c;
    c.t_ij = t_ij[k];
    c.tau_minus_cost = tmc[k];
    c.lambda_j = lam[k];
    c.factor = fac[k];
    c.expm1_tau = emt[k];
    return ExpectedTimeModel::raw_kernel(alpha, c);
  };

  // Every count in [1, kCount] covers each residual tail length twice
  // over for both entry points.
  for (std::size_t count = 1; count <= kCount; ++count) {
    std::vector<double> got(count);
    detail::eq4_probe_row(lanes, 1.0, count, got.data());
    for (std::size_t k = 0; k < count; ++k)
      ASSERT_TRUE(same_bits(got[k], want_at(1.0, k)))
          << "probe_row count=" << count << " lane=" << k
          << " lambda=" << lam[k];
    detail::eq4_probe_gather(lanes, alphas.data(), count, got.data());
    for (std::size_t k = 0; k < count; ++k)
      ASSERT_TRUE(same_bits(got[k], want_at(alphas[k], k)))
          << "probe_gather count=" << count << " lane=" << k
          << " lambda=" << lam[k];
  }
}

TEST(SimdKernel, RowViewsSurviveDeepExtension) {
  // Regression guard for the SoA mirror: growing a row (deeper j) must
  // keep the already-filled prefix's bits identical — append-only, no
  // recompute drift — and row_records pointers refreshed after growth
  // must agree with the batch output.
  const Pack pack = make_pack({2.5e6});
  const checkpoint::Model resilience = faulty_model();
  const ExpectedTimeModel model(pack, resilience);
  constexpr int kShallow = 6;
  constexpr int kDeep = 300;
  std::vector<double> first(kShallow);
  model.probe_many(0, 0, kShallow, 0.8, first.data());
  std::vector<double> deep(kDeep);
  model.probe_many(0, 0, kDeep, 0.8, deep.data());
  EXPECT_EQ(0, std::memcmp(first.data(), deep.data(),
                           kShallow * sizeof(double)));
  const ExpectedTimeModel::Coeffs* row = model.row_records(0, kDeep);
  for (int h = 0; h < kDeep; ++h)
    ASSERT_TRUE(same_bits(
        deep[static_cast<std::size_t>(h)],
        ExpectedTimeModel::raw_kernel(0.8, row[h])))
        << "h=" << h;
}

}  // namespace
}  // namespace coredis::core
