/// \file headers_compile_test.cpp
/// Build-seam smoke test: every public header must compile when included in
/// a single translation unit, in alphabetical order, with no hidden include
/// dependencies between them.  A header that forgets one of its own includes
/// or violates ODR breaks this TU before any test runs.  `core/detail/` is
/// deliberately absent: it is internal (DESIGN.md section 1) and owes no
/// standalone-compilation guarantee.

#include "checkpoint/buddy.hpp"
#include "checkpoint/model.hpp"
#include "checkpoint/period.hpp"
#include "complexity/moldable.hpp"
#include "complexity/reduction.hpp"
#include "complexity/three_partition.hpp"
#include "core/energy.hpp"
#include "core/engine.hpp"
#include "core/expected_time.hpp"
#include "core/optimal_schedule.hpp"
#include "core/pack.hpp"
#include "core/timeline.hpp"
#include "core/types.hpp"
#include "exp/campaign.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/scenario_file.hpp"
#include "extensions/batch.hpp"
#include "extensions/dedicated.hpp"
#include "extensions/online.hpp"
#include "extensions/pack_partition.hpp"
#include "extensions/silent_errors.hpp"
#include "extensions/silent_sim.hpp"
#include "fault/exponential.hpp"
#include "fault/generator.hpp"
#include "fault/per_processor.hpp"
#include "fault/trace.hpp"
#include "fault/weibull.hpp"
#include "platform/platform.hpp"
#include "redistrib/bipartite.hpp"
#include "redistrib/cost.hpp"
#include "speedup/amdahl.hpp"
#include "speedup/model.hpp"
#include "speedup/presets.hpp"
#include "speedup/synthetic.hpp"
#include "speedup/table_profile.hpp"
#include "util/cli.hpp"
#include "util/contracts.hpp"
#include "util/csv.hpp"
#include "util/indexed_heap.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"
#include "util/plot.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

#include <gtest/gtest.h>

TEST(HeadersCompile, AllPublicHeadersLinkInOneTranslationUnit) {
  // The real assertion is that this file compiled and linked; touch a few
  // symbols across layers so the linker must resolve them from the library.
  EXPECT_GT(coredis::checkpoint::young_period(coredis::units::years(100.0),
                                              60.0),
            0.0);
  EXPECT_EQ(coredis::redistrib::rounds(2, 4), 2);
  EXPECT_EQ(coredis::core::to_string(coredis::core::EndPolicy::Local),
            "EndLocal");
  EXPECT_FALSE(coredis::speedup::preset_names().empty());
}
