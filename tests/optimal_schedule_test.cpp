/// Tests of Algorithm 1 (optimal schedule without redistribution):
/// feasibility invariants, behavior on homogeneous/heterogeneous packs,
/// and — the Theorem 1 certification — equality with an exhaustive search
/// over all even allocations on small instances.

#include <algorithm>
#include <cstddef>
#include <gtest/gtest.h>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <tuple>
#include <utility>
#include <vector>

#include "complexity/moldable.hpp"
#include "core/optimal_schedule.hpp"
#include "speedup/synthetic.hpp"
#include "util/units.hpp"

namespace coredis::core {
namespace {

Pack make_pack(std::vector<double> sizes) {
  std::vector<TaskSpec> tasks;
  for (double m : sizes) tasks.push_back({m});
  return Pack(std::move(tasks), std::make_shared<speedup::SyntheticModel>(0.08));
}

checkpoint::Model faulty_model(double mtbf_years = 100.0) {
  return checkpoint::Model(
      {units::years(mtbf_years), 60.0, 1.0, checkpoint::PeriodRule::Young, 0.0});
}

double schedule_makespan(const ExpectedTimeModel& model,
                         const std::vector<int>& sigma) {
  double makespan = 0.0;
  for (std::size_t i = 0; i < sigma.size(); ++i)
    makespan = std::max(
        makespan, model.expected_time(static_cast<int>(i), sigma[i], 1.0));
  return makespan;
}

TEST(OptimalSchedule, AllocationsAreEvenAndFeasible) {
  const Pack pack = make_pack({2.0e6, 1.6e6, 2.4e6, 1.9e6});
  const checkpoint::Model resilience = faulty_model();
  const ExpectedTimeModel model(pack, resilience);
  const auto sigma = optimal_schedule(model, 64);
  ASSERT_EQ(sigma.size(), 4u);
  int total = 0;
  for (int s : sigma) {
    EXPECT_GE(s, 2);
    EXPECT_EQ(s % 2, 0);
    total += s;
  }
  EXPECT_LE(total, 64);
}

TEST(OptimalSchedule, ThrowsWhenPlatformTooSmall) {
  const Pack pack = make_pack({2.0e6, 1.6e6});
  const checkpoint::Model resilience = faulty_model();
  const ExpectedTimeModel model(pack, resilience);
  EXPECT_THROW(optimal_schedule(model, 2), std::invalid_argument);
}

TEST(OptimalSchedule, ExactFitGivesOnePairEach) {
  const Pack pack = make_pack({2.0e6, 1.6e6, 2.4e6});
  const checkpoint::Model resilience = faulty_model();
  const ExpectedTimeModel model(pack, resilience);
  const auto sigma = optimal_schedule(model, 6);
  for (int s : sigma) EXPECT_EQ(s, 2);
}

TEST(OptimalSchedule, BiggerTasksGetMoreProcessors) {
  const Pack pack = make_pack({2.5e6, 1.5e3});
  const checkpoint::Model resilience = faulty_model();
  const ExpectedTimeModel model(pack, resilience);
  const auto sigma = optimal_schedule(model, 40);
  EXPECT_GT(sigma[0], sigma[1]);
}

TEST(OptimalSchedule, HomogeneousPackBalances) {
  const Pack pack = make_pack({2.0e6, 2.0e6, 2.0e6, 2.0e6});
  const checkpoint::Model resilience = faulty_model();
  const ExpectedTimeModel model(pack, resilience);
  const auto sigma = optimal_schedule(model, 32);
  for (int s : sigma) EXPECT_EQ(s, sigma[0]);
}

TEST(OptimalSchedule, FaultFreeUsesAllUsefulProcessors) {
  // With the synthetic profile, fault-free times strictly decrease with j,
  // so the greedy should distribute the entire platform.
  const Pack pack = make_pack({2.0e6, 1.8e6});
  const checkpoint::Model resilience(
      {0.0, 60.0, 1.0, checkpoint::PeriodRule::Young, 0.0});
  const ExpectedTimeModel model(pack, resilience);
  const auto sigma = optimal_schedule(model, 24);
  EXPECT_EQ(sigma[0] + sigma[1], 24);
}

TEST(OptimalSchedule, PaperScaleSmoke) {
  // n = 100 on p = 5000 (the Figure 7/8 corner): the schedule must build
  // quickly and leave a sane allocation (even, feasible, monotone in
  // task size would be too strong with faults, but totals must hold).
  Rng rng(12345);
  const Pack pack = Pack::uniform_random(
      100, 1.5e6, 2.5e6, std::make_shared<speedup::SyntheticModel>(0.08),
      rng);
  const checkpoint::Model resilience = faulty_model(100.0);
  const ExpectedTimeModel model(pack, resilience);
  const auto sigma = optimal_schedule(model, 5000);
  int total = 0;
  for (int s : sigma) {
    EXPECT_GE(s, 2);
    EXPECT_EQ(s % 2, 0);
    total += s;
  }
  EXPECT_LE(total, 5000);
  EXPECT_GT(total, 200);  // far beyond one pair each on this workload
}

/// Theorem 1 certification: the greedy result equals an exhaustive search
/// over all even allocations, across several packs and platform sizes.
class Theorem1Certification
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(Theorem1Certification, GreedyMatchesBruteForce) {
  const auto [p, mtbf_years] = GetParam();
  const std::vector<std::vector<double>> workloads = {
      {2.0e6, 1.6e6},
      {2.0e6, 1.6e6, 2.4e6},
      {2.5e6, 1.5e3, 8.0e5},
      {1.5e6, 1.5e6, 1.5e6, 1.5e6},
      {2.2e6, 9.0e5, 1.1e6, 2.5e6},
  };
  for (const auto& sizes : workloads) {
    if (p < 2 * static_cast<int>(sizes.size())) continue;
    const Pack pack = make_pack(sizes);
    const checkpoint::Model resilience = faulty_model(mtbf_years);
    const ExpectedTimeModel model(pack, resilience);

    const auto sigma = optimal_schedule(model, p);
    const double greedy = schedule_makespan(model, sigma);
    const double brute = complexity::brute_force_rigid(
        pack.size(), p,
        [&](int task, int j) { return model.expected_time(task, j, 1.0); },
        /*even_only=*/true, /*min_alloc=*/2);
    EXPECT_NEAR(greedy, brute, 1e-9 * brute)
        << "p=" << p << " mtbf=" << mtbf_years << " n=" << sizes.size();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Theorem1Certification,
    ::testing::Combine(::testing::Values(4, 6, 8, 10, 12, 16),
                       ::testing::Values(100.0, 10.0, 1.0)));

}  // namespace
}  // namespace coredis::core
