/// Unit tests for the utility substrate: RNG determinism and distribution
/// moments, streaming statistics, parallel_for, CLI parsing, tables, CSV.

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <gtest/gtest.h>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/indexed_heap.hpp"
#include "util/parallel.hpp"
#include "util/plot.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace coredis {
namespace {

TEST(Rng, DeterministicBySeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += a() == b();
  EXPECT_LT(equal, 5);
}

TEST(Rng, ChildStreamsAreIndependentAndDeterministic) {
  Rng a = Rng::child(42, 0);
  Rng a2 = Rng::child(42, 0);
  Rng b = Rng::child(42, 1);
  EXPECT_EQ(a(), a2());
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += a() == b();
  EXPECT_LT(equal, 5);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeWithoutBias) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(rng.uniform_int(3, 10));
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_EQ(*seen.begin(), 3u);
  EXPECT_EQ(*seen.rbegin(), 10u);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(13);
  const double rate = 1.0 / 250.0;
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.exponential(rate));
  EXPECT_NEAR(stats.mean(), 250.0, 5.0);
}

TEST(Rng, ExponentialIsMemorylessInDistribution) {
  // P(X > a + b | X > a) == P(X > b): compare tail frequencies.
  Rng rng(17);
  const double rate = 1.0;
  int beyond_1 = 0;
  int beyond_2_given_1 = 0;
  int beyond_1_overall = 0;
  const int trials = 400000;
  for (int i = 0; i < trials; ++i) {
    const double x = rng.exponential(rate);
    if (x > 1.0) {
      ++beyond_1;
      if (x > 2.0) ++beyond_2_given_1;
    }
    if (x > 1.0) ++beyond_1_overall;
  }
  const double conditional =
      static_cast<double>(beyond_2_given_1) / static_cast<double>(beyond_1);
  const double unconditional =
      static_cast<double>(beyond_1_overall) / static_cast<double>(trials);
  EXPECT_NEAR(conditional, unconditional, 0.01);
}

TEST(Rng, WeibullShapeOneIsExponential) {
  Rng rng(19);
  RunningStats weibull;
  for (int i = 0; i < 100000; ++i) weibull.add(rng.weibull(1.0, 100.0));
  EXPECT_NEAR(weibull.mean(), 100.0, 2.0);
  // Exponential has CV = 1; check the Weibull k=1 matches.
  EXPECT_NEAR(weibull.stddev() / weibull.mean(), 1.0, 0.05);
}

TEST(RunningStats, MeanVarianceExtrema) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.stddev_population(), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5.0, 17.0);
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  stats.add(3.5);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.ci95_halfwidth(), 0.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median_of({5.0, 1.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median_of({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(median_of({}), 0.0);
}

TEST(ThreadBudget, SplitsTheMachineBudgetFairly) {
  // Pin the machine budget via COREDIS_THREADS so the assertions are
  // deterministic on any host (restored below; the suite may itself run
  // under an override, e.g. CI's COREDIS_THREADS=2).
  const char* previous = std::getenv("COREDIS_THREADS");
  const std::string saved = previous == nullptr ? "" : previous;
  ::setenv("COREDIS_THREADS", "7", 1);

  EXPECT_EQ(thread_budget_share(1, 0), 7u);
  // 7 threads over 3 workers: 3 + 2 + 2, covering the budget exactly.
  EXPECT_EQ(thread_budget_share(3, 0), 3u);
  EXPECT_EQ(thread_budget_share(3, 1), 2u);
  EXPECT_EQ(thread_budget_share(3, 2), 2u);
  std::size_t covered = 0;
  for (std::size_t k = 0; k < 7; ++k) covered += thread_budget_share(7, k);
  EXPECT_EQ(covered, 7u);
  // More workers than threads: every worker still makes progress.
  EXPECT_EQ(thread_budget_share(16, 0), 1u);
  EXPECT_EQ(thread_budget_share(16, 15), 1u);
  // Degenerate "no split" spelling falls back to the whole budget.
  EXPECT_EQ(thread_budget_share(0, 0), 7u);

  if (previous == nullptr) {
    ::unsetenv("COREDIS_THREADS");
  } else {
    ::setenv("COREDIS_THREADS", saved.c_str(), 1);
  }
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); }, 4);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(
          100,
          [](std::size_t i) {
            if (i == 37) throw std::runtime_error("boom");
          },
          4),
      std::runtime_error);
}

TEST(ParallelFor, ThrowingBodyStopsWorkersFromDrainingTheQueue) {
  // Regression: with a deep queue, one throwing body must abort the whole
  // loop quickly. Every non-throwing body sleeps, so if the workers kept
  // draining after the throw this test would take tens of seconds and
  // `executed` would approach `count`.
  constexpr std::size_t count = 20000;
  std::atomic<int> executed{0};
  const auto started = std::chrono::steady_clock::now();
  EXPECT_THROW(
      parallel_for(
          count,
          [&](std::size_t i) {
            if (i == 0) throw std::runtime_error("boom");
            executed.fetch_add(1);
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          },
          8),
      std::runtime_error);
  const auto elapsed = std::chrono::steady_clock::now() - started;
  // The workers in flight when index 0 threw may finish their current body
  // and at most begin one more before observing the stop flag.
  EXPECT_LT(executed.load(), 1000);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            10);
}

TEST(ParallelFor, ConcurrentThrowsPropagateExactlyOneException) {
  // Contention on the error slot: every body throws. One of them must come
  // back (no deadlock, no terminate from a lost exception), and it must be
  // one that was actually thrown.
  constexpr std::size_t count = 1000;
  std::string caught;
  try {
    parallel_for(
        count,
        [](std::size_t i) { throw std::runtime_error(std::to_string(i)); }, 8);
    FAIL() << "parallel_for must rethrow";
  } catch (const std::runtime_error& error) {
    caught = error.what();
  }
  ASSERT_FALSE(caught.empty());
  const std::size_t index = std::stoull(caught);
  EXPECT_LT(index, count);
}

TEST(ParallelFor, ExceptionWinnerIsTheFirstRecorded) {
  // Only index 3 throws; the propagated exception must be that one even
  // when many indices are queued behind it.
  try {
    parallel_for(
        10000,
        [](std::size_t i) {
          if (i == 3) throw std::runtime_error("the-one");
        },
        4);
    FAIL() << "parallel_for must rethrow";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "the-one");
  }
}

TEST(ParallelFor, SingleThreadFallback) {
  int sum = 0;
  parallel_for(10, [&](std::size_t i) { sum += static_cast<int>(i); }, 1);
  EXPECT_EQ(sum, 45);
}

TEST(ParallelFor, StealingVisitsEveryIndexExactlyOnce) {
  // Exactly-once across awkward (count, threads) pairs: counts that do
  // not tile the shard arithmetic, single-index shards, more threads
  // than indices.
  for (const std::size_t count :
       {std::size_t{1}, std::size_t{2}, std::size_t{7}, std::size_t{97},
        std::size_t{1000}}) {
    for (const std::size_t threads :
         {std::size_t{2}, std::size_t{3}, std::size_t{8}, std::size_t{13}}) {
      std::vector<std::atomic<int>> hits(count);
      ParallelOptions options;
      options.threads = threads;
      options.schedule = Schedule::Stealing;
      parallel_for(count, [&](std::size_t i) { hits[i].fetch_add(1); },
                   options);
      for (std::size_t i = 0; i < count; ++i)
        EXPECT_EQ(hits[i].load(), 1)
            << "i=" << i << " count=" << count << " threads=" << threads;
    }
  }
}

TEST(ParallelFor, StealingBalancesAFrontLoadedQueue) {
  // A front-loaded cost profile under the stealing schedule: all the
  // slow indices sit in the low shards. The gate only requires the loop
  // to land far under the 64 ms a serialized slow half would cost —
  // catching a stealing bug that degenerates to one worker — with a
  // wide margin so the test stays robust on loaded runners.
  constexpr std::size_t kCount = 64;
  std::vector<std::atomic<int>> hits(kCount);
  ParallelOptions options;
  options.threads = 8;
  options.schedule = Schedule::Stealing;
  const auto started = std::chrono::steady_clock::now();
  parallel_for(kCount,
               [&](std::size_t i) {
                 if (i < kCount / 2)
                   std::this_thread::sleep_for(std::chrono::milliseconds(2));
                 hits[i].fetch_add(1);
               },
               options);
  const auto elapsed = std::chrono::steady_clock::now() - started;
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // Sequential slow half is 64 ms; eight stealing workers should land
  // far under half of that even on a noisy single-core runner we only
  // require "meaningfully better than sequential".
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            60);
}

TEST(ParallelFor, StealingStopsWorkersAfterAThrow) {
  constexpr std::size_t count = 20000;
  std::atomic<int> executed{0};
  ParallelOptions options;
  options.threads = 8;
  options.schedule = Schedule::Stealing;
  EXPECT_THROW(
      parallel_for(
          count,
          [&](std::size_t i) {
            if (i == 0) throw std::runtime_error("boom");
            executed.fetch_add(1);
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          },
          options),
      std::runtime_error);
  EXPECT_LT(executed.load(), 1000);
}

TEST(Cli, ParsesFormsAndDefaults) {
  const char* argv[] = {"prog", "--runs", "12", "--seed=99", "--verbose"};
  CliParser cli(5, argv);
  EXPECT_EQ(cli.get_int("runs", 0), 12);
  EXPECT_EQ(cli.get_int("seed", 0), 99);
  EXPECT_TRUE(cli.get_bool("verbose"));
  EXPECT_EQ(cli.get_int("absent", 7), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("absent", 1.5), 1.5);
}

TEST(Cli, RejectsMalformedValues) {
  const char* argv[] = {"prog", "--runs", "abc"};
  CliParser cli(3, argv);
  EXPECT_THROW((void)cli.get_int("runs", 0), std::invalid_argument);
}

TEST(Cli, RejectsUnknownWhenAsked) {
  const char* argv[] = {"prog", "--tpyo", "1"};
  CliParser cli(3, argv);
  cli.describe("runs", "number of runs");
  EXPECT_THROW(cli.reject_unknown(), std::invalid_argument);
}

TEST(Cli, RejectsPositional) {
  const char* argv[] = {"prog", "positional"};
  EXPECT_THROW(CliParser(2, argv), std::invalid_argument);
}

TEST(TextTable, AlignsColumns) {
  TextTable table({"x", "longheader"});
  table.add_row({"1", "2"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("longheader"), std::string::npos);
  EXPECT_NE(out.find('\n'), std::string::npos);
}

TEST(Csv, EscapesAndRoundTrips) {
  CsvWriter csv({"a", "b"});
  csv.add_row(std::vector<std::string>{"plain", "with,comma"});
  csv.add_row(std::vector<std::string>{"with\"quote", "x"});
  const std::string out = csv.to_string();
  EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Welch, DetectsClearSeparation) {
  RunningStats a;
  RunningStats b;
  Rng rng(31);
  for (int i = 0; i < 30; ++i) {
    a.add(10.0 + rng.uniform(-0.5, 0.5));
    b.add(12.0 + rng.uniform(-0.5, 0.5));
  }
  const WelchResult result = welch_t_test(a, b);
  EXPECT_LT(result.t, -5.0);
  EXPECT_LT(result.p_two_sided, 0.001);
  EXPECT_TRUE(result.a_significantly_smaller());
}

TEST(Welch, NoFalsePositiveOnIdenticalDistributions) {
  RunningStats a;
  RunningStats b;
  Rng rng(37);
  for (int i = 0; i < 50; ++i) {
    a.add(rng.uniform(0.0, 1.0));
    b.add(rng.uniform(0.0, 1.0));
  }
  const WelchResult result = welch_t_test(a, b);
  EXPECT_GT(result.p_two_sided, 0.01);
}

TEST(Welch, DegenerateSamplesAreSafe) {
  RunningStats a;
  RunningStats b;
  a.add(1.0);
  b.add(2.0);
  const WelchResult tiny = welch_t_test(a, b);  // < 2 samples each
  EXPECT_EQ(tiny.p_two_sided, 1.0);
  a.add(1.0);
  b.add(2.0);
  const WelchResult zero_var = welch_t_test(a, b);
  EXPECT_TRUE(zero_var.a_significantly_smaller());
}

TEST(Plot, RendersMarkersAxesAndLegend) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  std::vector<PlotSeries> series;
  series.push_back({"rising", {0.0, 1.0, 2.0, 3.0}});
  series.push_back({"falling", {3.0, 2.0, 1.0, 0.0}});
  PlotOptions options;
  options.x_label = "x";
  const std::string plot = render_plot(x, series, options);
  EXPECT_NE(plot.find('*'), std::string::npos);
  EXPECT_NE(plot.find('+'), std::string::npos);
  EXPECT_NE(plot.find("* = rising"), std::string::npos);
  EXPECT_NE(plot.find("+ = falling"), std::string::npos);
  EXPECT_NE(plot.find('|'), std::string::npos);   // y axis
  EXPECT_NE(plot.find("+--"), std::string::npos);  // x axis
}

TEST(Plot, ExtremesLandOnOppositeRows) {
  const std::vector<double> x{0.0, 1.0};
  std::vector<PlotSeries> series{{"s", {0.0, 10.0}}};
  PlotOptions options;
  options.height = 8;
  options.width = 20;
  const std::string plot = render_plot(x, series, options);
  // First raster line holds the maximum, last raster line the minimum.
  std::istringstream stream(plot);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(stream, line)) lines.push_back(line);
  EXPECT_NE(lines.front().find('*'), std::string::npos);
  EXPECT_NE(lines[7].find('*'), std::string::npos);
}

TEST(Plot, RejectsMismatchedSeries) {
  std::vector<PlotSeries> series{{"s", {1.0}}};
  EXPECT_DEATH((void)render_plot({1.0, 2.0}, series), "precondition");
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(units::years(1.0), 365.25 * 24 * 3600);
  EXPECT_DOUBLE_EQ(units::to_years(units::years(120.0)), 120.0);
  EXPECT_DOUBLE_EQ(units::days(2.0), 2 * 86400.0);
  EXPECT_DOUBLE_EQ(units::hours(3.0), 3 * 3600.0);
}

TEST(IndexedHeap, MinOrderMatchesLinearScanWithTies) {
  util::IndexedHeap<util::MinKeyThenId> heap;
  heap.reset(6);
  const double keys[] = {5.0, 2.0, 2.0, 9.0, 1.0, 2.0};
  for (int id = 0; id < 6; ++id) heap.update(id, keys[id]);
  EXPECT_EQ(heap.top(), 4);
  heap.remove(4);
  // Three-way tie at 2.0: the smallest id must win, like a `<` scan.
  EXPECT_EQ(heap.top(), 1);
  heap.remove(1);
  EXPECT_EQ(heap.top(), 2);
  heap.update(5, 0.5);  // decrease-key repositions in place
  EXPECT_EQ(heap.top(), 5);
  heap.update(5, 99.0);  // increase-key too
  EXPECT_EQ(heap.top(), 2);
}

TEST(IndexedHeap, MaxOrderAndRemoval) {
  util::IndexedHeap<util::MaxKeyThenId> heap;
  heap.reset(4);
  for (int id = 0; id < 4; ++id) heap.update(id, static_cast<double>(id));
  EXPECT_EQ(heap.top(), 3);
  EXPECT_DOUBLE_EQ(heap.top_key(), 3.0);
  heap.remove(3);
  heap.remove(3);  // removing an absent id is a no-op
  EXPECT_EQ(heap.top(), 2);
  EXPECT_EQ(heap.size(), 3);
  EXPECT_FALSE(heap.contains(3));
}

TEST(IndexedHeap, ForEachAtOrBeforeVisitsExactlyTheBoundedSet) {
  util::IndexedHeap<util::MinKeyThenId> heap;
  heap.reset(10);
  for (int id = 0; id < 10; ++id) heap.update(id, static_cast<double>(9 - id));
  std::set<int> visited;
  heap.for_each_at_or_before(4.0, [&](int id) { visited.insert(id); });
  // Keys <= 4.0 belong to ids 5..9; the bound itself is included.
  EXPECT_EQ(visited, (std::set<int>{5, 6, 7, 8, 9}));
  visited.clear();
  heap.for_each_at_or_before(-1.0, [&](int id) { visited.insert(id); });
  EXPECT_TRUE(visited.empty());
}

TEST(ThreadEnv, ParseThreadCountAcceptsPlainDecimals) {
  std::size_t count = 99;
  std::string error;
  EXPECT_TRUE(parse_thread_count("0", count, error));
  EXPECT_EQ(count, 0u);  // 0 means "auto" downstream, and must parse
  EXPECT_TRUE(parse_thread_count("1", count, error));
  EXPECT_EQ(count, 1u);
  EXPECT_TRUE(parse_thread_count("8", count, error));
  EXPECT_EQ(count, 8u);
  EXPECT_TRUE(error.empty());
  EXPECT_TRUE(parse_thread_count(std::to_string(max_thread_override()),
                                 count, error));
  EXPECT_EQ(count, max_thread_override());
}

TEST(ThreadEnv, ParseThreadCountRejectionsNameTheValue) {
  // Every rejection must carry the offending text: the value comes from
  // an environment variable, and "invalid thread count" with no echo
  // would send the operator hunting through their shell profile.
  const char* const rejected[] = {"abc", "8x", "-1", " 8", "8 ", "0x8", "1e3"};
  for (const char* text : rejected) {
    std::size_t count = 0;
    std::string error;
    EXPECT_FALSE(parse_thread_count(text, count, error)) << text;
    EXPECT_NE(error.find(text), std::string::npos) << error;
  }
  std::size_t count = 0;
  std::string error;
  EXPECT_FALSE(parse_thread_count("", count, error));
  EXPECT_NE(error.find("empty"), std::string::npos) << error;
  // Beyond the cap — including values that would overflow size_t if the
  // parser multiplied blindly — the error names the maximum.
  for (const char* text : {"65537", "18446744073709551616",
                           "99999999999999999999999999"}) {
    EXPECT_FALSE(parse_thread_count(text, count, error)) << text;
    EXPECT_NE(error.find(std::to_string(max_thread_override())),
              std::string::npos)
        << error;
  }
}

TEST(ThreadEnv, ParseAffinityFlagIsStrictlyBinary) {
  bool on = false;
  std::string error;
  EXPECT_TRUE(parse_affinity_flag("1", on, error));
  EXPECT_TRUE(on);
  EXPECT_TRUE(parse_affinity_flag("0", on, error));
  EXPECT_FALSE(on);
  for (const char* text : {"true", "yes", "2", "", " 1", "01"}) {
    EXPECT_FALSE(parse_affinity_flag(text, on, error)) << text;
    EXPECT_NE(error.find("must be 0 or 1"), std::string::npos) << error;
  }
}

TEST(ThreadEnv, DefaultThreadCountFallsBackLoudlyOnGarbage) {
  // Garbage in COREDIS_THREADS must not silently become 0 threads (which
  // parallel_for would treat as "auto" — masking the typo) or crash; it
  // falls back to hardware concurrency, which is never 0.
  const char* previous = std::getenv("COREDIS_THREADS");
  const std::string saved = previous == nullptr ? "" : previous;
  ::setenv("COREDIS_THREADS", "not-a-number", 1);
  EXPECT_GT(default_thread_count(), 0u);
  ::setenv("COREDIS_THREADS", "3", 1);
  EXPECT_EQ(default_thread_count(), 3u);
  if (previous == nullptr)
    ::unsetenv("COREDIS_THREADS");
  else
    ::setenv("COREDIS_THREADS", saved.c_str(), 1);
}

}  // namespace
}  // namespace coredis
