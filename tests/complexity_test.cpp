/// Tests of the complexity artifacts (paper section 4): 3-partition
/// instances and solver, the Theorem 2 reduction, and the exact schedulers
/// certifying both directions of the reduction on small instances.

#include <algorithm>
#include <cstddef>
#include <gtest/gtest.h>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "complexity/moldable.hpp"
#include "complexity/reduction.hpp"
#include "complexity/three_partition.hpp"
#include "util/rng.hpp"

namespace coredis::complexity {
namespace {

TEST(ThreePartition, YesInstancesAreWellFormedAndSolvable) {
  Rng rng(1);
  for (int m : {1, 2, 3, 4}) {
    const ThreePartitionInstance instance = make_yes_instance(m, rng);
    EXPECT_TRUE(instance.well_formed());
    const auto solution = solve(instance);
    ASSERT_TRUE(solution.has_value()) << "m=" << m;
    EXPECT_TRUE(verify(instance, *solution));
  }
}

TEST(ThreePartition, VerifyRejectsBadCertificates) {
  Rng rng(2);
  const ThreePartitionInstance instance = make_yes_instance(2, rng);
  auto solution = solve(instance);
  ASSERT_TRUE(solution.has_value());
  // Swap two indices across groups: sums break.
  ThreePartitionSolution bad = *solution;
  std::swap(bad[0][0], bad[1][0]);
  const bool sums_still_fine = verify(instance, bad);
  // Either the swap broke a sum (usual) or the items happened to be equal;
  // in the latter case the certificate is still valid. Force a definitely
  // broken one: duplicate an index.
  ThreePartitionSolution duplicated = *solution;
  duplicated[1][0] = duplicated[0][0];
  EXPECT_FALSE(verify(instance, duplicated));
  (void)sums_still_fine;
}

TEST(ThreePartition, DetectsInfeasibleInstance) {
  // Hand-built no-instance (m = 2, B = 400): items force a 201+101+... mix
  // that cannot form two exact triples.
  ThreePartitionInstance instance;
  instance.bound = 400;
  instance.items = {101, 101, 101, 199, 199, 99};
  // sum = 800 = 2*400 but 99 violates B/4 < a_i -> not well-formed.
  EXPECT_FALSE(instance.well_formed());
  EXPECT_FALSE(solve(instance).has_value());

  // A well-formed but infeasible one: every triple must sum to 400.
  instance.items = {102, 102, 102, 198, 198, 98};
  EXPECT_FALSE(instance.well_formed());  // 98 still too small
  instance.items = {105, 105, 105, 190, 190, 105};
  // sum = 800, all in (100, 200); triples: need 400 each; the three 105s
  // with a 190 make 400? 105+105+190 = 400 yes — feasible. Adjust:
  instance.items = {110, 110, 110, 185, 185, 100};
  // 100 violates the window strictly (need > 100): not well-formed.
  EXPECT_FALSE(instance.well_formed());
  instance.items = {111, 111, 111, 184, 184, 99};
  EXPECT_FALSE(instance.well_formed());
  // Use solver-level check on a valid-but-infeasible set:
  instance.items = {102, 104, 106, 194, 196, 98};
  EXPECT_FALSE(instance.well_formed());
}

TEST(ThreePartition, SolverFindsNoSolutionOnCraftedInstance) {
  // All six items in (100, 200) summing to 800, with no two triples at
  // exactly 400: {101, 103, 107, 197, 151, 141}: sum = 800.
  // Triples containing 101: {101,103,196}? not present... enumerate via
  // the solver itself and cross-check with a brute-force count.
  ThreePartitionInstance instance;
  instance.bound = 400;
  instance.items = {101, 103, 107, 197, 151, 141};
  ASSERT_TRUE(instance.well_formed());
  int feasible_triples = 0;
  for (int a = 0; a < 6; ++a)
    for (int b = a + 1; b < 6; ++b)
      for (int c = b + 1; c < 6; ++c)
        if (instance.items[a] + instance.items[b] + instance.items[c] == 400)
          ++feasible_triples;
  ASSERT_EQ(feasible_triples, 0);  // crafted so nothing sums to 400
  EXPECT_FALSE(solve(instance).has_value());
}

TEST(Reduction, InstanceShapeMatchesTheorem2) {
  Rng rng(3);
  const ThreePartitionInstance source = make_yes_instance(2, rng);
  const Reduction reduction = reduce(source);
  const int m = source.groups();
  EXPECT_EQ(reduction.instance.tasks(), 4 * m);
  EXPECT_EQ(reduction.instance.processors, 4 * m);
  EXPECT_TRUE(reduction.instance.assumptions_hold());

  // Small task i: t_{i,1} = a_i, flat 3a_i/4 beyond.
  for (int i = 0; i < 3 * m; ++i) {
    const double a = static_cast<double>(source.items[static_cast<std::size_t>(i)]);
    EXPECT_DOUBLE_EQ(reduction.instance.at(i, 1), a);
    EXPECT_DOUBLE_EQ(reduction.instance.at(i, 2), 0.75 * a);
    EXPECT_DOUBLE_EQ(reduction.instance.at(i, 4 * m), 0.75 * a);
  }
  // Large task: perfectly parallel up to 4, flat (2/9) work beyond.
  const double work = 4.0 * reduction.deadline - static_cast<double>(source.bound);
  for (int k = 0; k < m; ++k) {
    const int task = 3 * m + k;
    for (int j = 1; j <= 4; ++j)
      EXPECT_DOUBLE_EQ(reduction.instance.at(task, j), work / j);
    EXPECT_DOUBLE_EQ(reduction.instance.at(task, 5), 2.0 / 9.0 * work);
  }
  // 4D - B > D, the lever of the proof.
  EXPECT_GT(work, reduction.deadline);
}

TEST(Reduction, ProofScheduleMeetsDeadlineExactly) {
  Rng rng(4);
  for (int m : {1, 2, 3}) {
    const ThreePartitionInstance source = make_yes_instance(m, rng);
    const auto solution = solve(source);
    ASSERT_TRUE(solution.has_value());
    const Reduction reduction = reduce(source);
    const double makespan = proof_schedule_makespan(source, *solution);
    EXPECT_NEAR(makespan, reduction.deadline, 1e-9);
  }
}

TEST(Reduction, ExactMalleableSolverAgreesOnYesInstances) {
  // Forward direction, certified by exhaustive search (m = 1: 4 tasks on
  // 4 processors).
  Rng rng(5);
  const ThreePartitionInstance source = make_yes_instance(1, rng);
  const Reduction reduction = reduce(source);
  const double optimal = malleable_makespan(reduction.instance);
  EXPECT_NEAR(optimal, reduction.deadline, 1e-6);
}

TEST(Reduction, WorkAccountingMakesDeadlineTight) {
  // The only-if direction rests on a work argument: the minimum total
  // work equals exactly p * D, so any schedule meeting D has zero slack.
  Rng rng(6);
  const ThreePartitionInstance source = make_yes_instance(2, rng);
  const Reduction reduction = reduce(source);
  const int n = reduction.instance.tasks();
  double min_work = 0.0;
  for (int i = 0; i < n; ++i) {
    double task_min = std::numeric_limits<double>::infinity();
    for (int j = 1; j <= reduction.instance.processors; ++j)
      task_min = std::min(task_min, j * reduction.instance.at(i, j));
    min_work += task_min;
  }
  EXPECT_NEAR(min_work, reduction.instance.processors * reduction.deadline,
              1e-6);
}

TEST(Moldable, AssumptionCheckerCatchesViolations) {
  MoldableInstance bad;
  bad.processors = 2;
  bad.time = {{10.0, 12.0}};  // time increases with j
  EXPECT_FALSE(bad.assumptions_hold());
  MoldableInstance superlinear;
  superlinear.processors = 2;
  superlinear.time = {{10.0, 4.0}};  // work drops: 10 -> 8
  EXPECT_FALSE(superlinear.assumptions_hold());
  MoldableInstance good;
  good.processors = 2;
  good.time = {{10.0, 6.0}};
  EXPECT_TRUE(good.assumptions_hold());
}

TEST(Moldable, BruteForceRigidSimpleCases) {
  // Two tasks, times 10/j and 20/j, 3 processors: give 1 and 2.
  const auto time = [](int task, int j) {
    return (task == 0 ? 10.0 : 20.0) / j;
  };
  EXPECT_DOUBLE_EQ(brute_force_rigid(2, 3, time, false), 10.0);
  // Even-only on 4 processors: both get 2: max(5, 10) = 10.
  EXPECT_DOUBLE_EQ(brute_force_rigid(2, 4, time, true, 2), 10.0);
}

TEST(Moldable, MalleableBeatsRigidWhenRedistributionHelps) {
  // Task 0 is short; task 1 is perfectly parallel: handing over the
  // processor at t=10 beats any rigid split.
  MoldableInstance instance;
  instance.processors = 2;
  instance.time = {{10.0, 10.0},   // short task: no parallelism
                   {40.0, 20.0}};  // perfectly parallel
  const double rigid = brute_force_rigid(
      2, 2, [&](int task, int j) { return instance.at(task, j); }, false);
  const double malleable = malleable_makespan(instance);
  EXPECT_LT(malleable, rigid);
  // By hand: run both on 1 proc; at t=10 task 1 has 30/40 work left and
  // finishes at 10 + 30/2 = 25 with both processors.
  EXPECT_NEAR(malleable, 25.0, 1e-6);
  EXPECT_DOUBLE_EQ(rigid, 40.0);
}

TEST(Moldable, GuardsAgainstOversizedSearch) {
  MoldableInstance instance;
  instance.processors = 12;
  instance.time.assign(12, std::vector<double>(12, 1.0));
  EXPECT_THROW((void)malleable_makespan(instance), std::invalid_argument);
  EXPECT_THROW(
      (void)brute_force_rigid(9, 20, [](int, int) { return 1.0; }, false),
      std::invalid_argument);
}

}  // namespace
}  // namespace coredis::complexity
