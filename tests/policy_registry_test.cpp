/// \file policy_registry_test.cpp
/// The registry differential battery (DESIGN.md section 10): the policy
/// registry is the production dispatch, and this suite locks it against
/// the frozen pre-registry switch byte for byte. Three layers:
///
///  * campaign artifacts: whole grids — offline paper configs, an
///    online-arrival grid, both fault laws — run once per DispatchPath
///    and the JSONL files must compare equal (cmp semantics, the
///    lazy_equivalence pattern at the artifact level);
///  * registry strings vs presets: `pack(end=..., fail=...)` spellings
///    must replay the preset ConfigSpecs double for double;
///  * the adaptive policies (bandit, reshape): deterministic in
///    (point seed, rep) — identical cells across repeated runs, across
///    thread counts (GridRunOptions::threads and COREDIS_THREADS), and
///    across the shard+merge fabric.

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>
#include <string>
#include <vector>

#include "exp/campaign.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/scenario_file.hpp"
#include "policy/registry.hpp"

namespace coredis::exp {
namespace {

/// Offline differential grid: every pack-engine cell of the paper set
/// plus both fault laws (the Weibull requirement of the battery).
const char* const kOfflineCampaign = R"(
n = 6
p = 24
runs = 2
seed = 20260726
mtbf_years = 2, 50
fault_law = exponential, weibull
configs = paper
)";

/// Online-arrival differential grid: the three arrival-driven
/// schedulers under Poisson releases, again under both fault laws.
const char* const kOnlineCampaign = R"(
n = 6
p = 24
runs = 2
seed = 20260731
mtbf_years = 2
fault_law = exponential, weibull
arrival_law = poisson
load_factor = 1
configs = online
)";

/// Adaptive-policy grid: the two registry-only baselines next to the
/// malleable reference, over an online workload.
const char* const kAdaptiveCampaign = R"(
n = 6
p = 24
runs = 2
seed = 20260807
mtbf_years = 2, 50
fault_law = exponential, weibull
arrival_law = poisson
load_factor = 1
policy = "bandit(window=10, explore=0.25), reshape(gain=0.5), malleable"
)";

std::string read_file(const std::filesystem::path& path) {
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file) << "cannot open " << path;
  std::ostringstream text;
  text << file.rdbuf();
  return text.str();
}

std::filesystem::path temp_jsonl(const std::string& tag) {
  return std::filesystem::temp_directory_path() /
         ("coredis_policy_registry_test_" + tag + ".jsonl");
}

/// RAII override of COREDIS_THREADS (campaign_test.cpp's idiom).
class ThreadsEnv {
 public:
  explicit ThreadsEnv(const char* value) {
    const char* previous = std::getenv("COREDIS_THREADS");
    had_previous_ = previous != nullptr;
    if (had_previous_) previous_ = previous;
    if (value == nullptr) {
      ::unsetenv("COREDIS_THREADS");
    } else {
      ::setenv("COREDIS_THREADS", value, 1);
    }
  }
  ~ThreadsEnv() {
    if (had_previous_) {
      ::setenv("COREDIS_THREADS", previous_.c_str(), 1);
    } else {
      ::unsetenv("COREDIS_THREADS");
    }
  }

 private:
  bool had_previous_ = false;
  std::string previous_;
};

/// Run the campaign under one dispatch path and return the artifact
/// bytes (the file is removed afterwards).
std::string campaign_bytes(const Campaign& campaign, DispatchPath path,
                           const std::string& tag, std::size_t threads = 0) {
  const std::filesystem::path file = temp_jsonl(tag);
  std::filesystem::remove(file);
  GridRunOptions options;
  options.jsonl_path = file.string();
  options.dispatch = path;
  options.threads = threads;
  (void)run_campaign(campaign, options);
  std::string bytes = read_file(file);
  std::filesystem::remove(file);
  return bytes;
}

TEST(PolicyRegistryDifferential, OfflineGridByteIdentical) {
  const Campaign campaign = parse_campaign(kOfflineCampaign);
  const std::string registry =
      campaign_bytes(campaign, DispatchPath::Registry, "offline_reg");
  const std::string legacy =
      campaign_bytes(campaign, DispatchPath::Legacy, "offline_leg");
  EXPECT_FALSE(registry.empty());
  EXPECT_EQ(registry, legacy);
}

TEST(PolicyRegistryDifferential, OnlineArrivalGridByteIdentical) {
  const Campaign campaign = parse_campaign(kOnlineCampaign);
  const std::string registry =
      campaign_bytes(campaign, DispatchPath::Registry, "online_reg");
  const std::string legacy =
      campaign_bytes(campaign, DispatchPath::Legacy, "online_leg");
  EXPECT_FALSE(registry.empty());
  EXPECT_EQ(registry, legacy);
}

void expect_identical(const core::RunResult& a, const core::RunResult& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.redistributions, b.redistributions);
  EXPECT_EQ(a.redistribution_cost, b.redistribution_cost);
  EXPECT_EQ(a.faults_effective, b.faults_effective);
  ASSERT_EQ(a.completion_times.size(), b.completion_times.size());
  for (std::size_t i = 0; i < a.completion_times.size(); ++i) {
    EXPECT_EQ(a.completion_times[i], b.completion_times[i]);
    EXPECT_EQ(a.final_allocation[i], b.final_allocation[i]);
  }
}

void expect_identical_cells(const CellResult& a, const CellResult& b) {
  EXPECT_EQ(a.baseline, b.baseline);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t c = 0; c < a.results.size(); ++c) {
    SCOPED_TRACE(::testing::Message() << "config " << c);
    expect_identical(a.results[c], b.results[c]);
  }
}

TEST(PolicyRegistryDifferential, RegistryStringsMatchPresets) {
  // Every legacy SchedulerKind, spelled as a registry policy string,
  // must replay the preset spec's simulation double for double — the
  // canonical strings route both through the same instantiated policy.
  Scenario scenario;
  scenario.n = 6;
  scenario.p = 24;
  scenario.mtbf_years = 2.0;
  scenario.runs = 2;
  scenario.seed = 20260726ULL;
  scenario.arrival_law = extensions::ArrivalLaw::Poisson;
  scenario.load_factor = 1.0;
  validate_scenario(scenario);

  const struct {
    const char* text;
    ConfigSpec preset;
  } pairs[] = {
      {"pack(end=greedy)", ig_end_greedy()},
      {"pack", ig_end_local()},
      {"pack(fail=stf, end=greedy)", stf_end_greedy()},
      {"pack(end=none, fail=none)", baseline_no_redistribution()},
      // The bare names are preset shortcuts in parse_config_set; the
      // empty option list forces the registry resolution path.
      {"malleable()", online_malleable()},
      {"easy()", online_easy()},
      {"fcfs()", online_fcfs()},
  };
  for (const auto& pair : pairs) {
    SCOPED_TRACE(pair.text);
    const std::vector<ConfigSpec> via_string =
        parse_config_set(pair.text);
    ASSERT_EQ(via_string.size(), 1u);
    EXPECT_EQ(via_string[0].scheduler, SchedulerKind::Registry);
    for (std::uint64_t rep = 0; rep < 2; ++rep) {
      expect_identical_cells(
          run_cell(scenario, via_string, rep, DispatchPath::Registry),
          run_cell(scenario, {pair.preset}, rep, DispatchPath::Legacy));
    }
  }
}

TEST(PolicyRegistryDifferential, RegistryOnlySpecsRunUnderLegacyPathRequest) {
  Scenario scenario;
  scenario.n = 4;
  scenario.p = 16;
  scenario.mtbf_years = 0.0;
  validate_scenario(scenario);
  const std::vector<ConfigSpec> bandit = parse_config_set("bandit");
  // Registry-only specs run fine down the (default) registry path even
  // when the caller asks for the legacy one — the legacy switch simply
  // cannot spell them, and plain legacy specs are unaffected.
  (void)run_cell(scenario, bandit, 0, DispatchPath::Legacy);
}

// ---- adaptive policies: determinism in (seed, rep) -----------------------

TEST(PolicyAdaptiveDeterminism, CellsReplayBitIdentically) {
  Scenario scenario;
  scenario.n = 6;
  scenario.p = 24;
  scenario.mtbf_years = 2.0;
  scenario.runs = 2;
  scenario.seed = 20260807ULL;
  scenario.arrival_law = extensions::ArrivalLaw::Poisson;
  scenario.load_factor = 1.0;
  validate_scenario(scenario);
  const std::vector<ConfigSpec> configs =
      parse_config_set("bandit(window=10, explore=0.25), reshape(gain=0.5)");
  for (std::uint64_t rep = 0; rep < 2; ++rep) {
    SCOPED_TRACE(::testing::Message() << "rep=" << rep);
    expect_identical_cells(run_cell(scenario, configs, rep),
                           run_cell(scenario, configs, rep));
  }
}

TEST(PolicyAdaptiveDeterminism, GridBytesIndependentOfThreadCount) {
  const Campaign campaign = parse_campaign(kAdaptiveCampaign);
  std::string one;
  std::string two;
  {
    ThreadsEnv env("1");
    one = campaign_bytes(campaign, DispatchPath::Registry, "adaptive_t1");
  }
  {
    ThreadsEnv env("2");
    two = campaign_bytes(campaign, DispatchPath::Registry, "adaptive_t2");
  }
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, two);
  // Explicit worker override, no env: same bytes again.
  const std::string four =
      campaign_bytes(campaign, DispatchPath::Registry, "adaptive_t4", 4);
  EXPECT_EQ(one, four);
}

TEST(PolicyAdaptiveDeterminism, ShardMergeMatchesSingleRun) {
  const Campaign campaign = parse_campaign(kAdaptiveCampaign);
  const std::string single =
      campaign_bytes(campaign, DispatchPath::Registry, "adaptive_single");

  const std::filesystem::path merged = temp_jsonl("adaptive_merged");
  std::filesystem::remove(merged);
  for (std::size_t worker = 0; worker < 2; ++worker) {
    GridRunOptions options;
    options.jsonl_path = merged.string();
    run_campaign_shard(campaign, {worker, 2}, options);
  }
  merge_campaign_shards(campaign, 2, merged.string());
  const std::string bytes = read_file(merged);
  std::filesystem::remove(merged);
  for (std::size_t worker = 0; worker < 2; ++worker)
    std::filesystem::remove(shard_path(merged.string(), {worker, 2}));
  EXPECT_EQ(single, bytes);
}

TEST(PolicyAdaptiveDeterminism, OfflineWorkloadsRunToo) {
  // The adaptive policies also accept the static setting (every job
  // released at 0): sanity-check termination and determinism there.
  Scenario scenario;
  scenario.n = 6;
  scenario.p = 24;
  scenario.mtbf_years = 2.0;
  scenario.seed = 7ULL;
  validate_scenario(scenario);
  const std::vector<ConfigSpec> configs = parse_config_set("bandit, reshape");
  const CellResult a = run_cell(scenario, configs, 0);
  const CellResult b = run_cell(scenario, configs, 0);
  expect_identical_cells(a, b);
  for (const core::RunResult& r : a.results) {
    EXPECT_GT(r.makespan, 0.0);
    ASSERT_EQ(r.completion_times.size(), 6u);
    for (double t : r.completion_times) EXPECT_GT(t, 0.0);
  }
}

}  // namespace
}  // namespace coredis::exp
