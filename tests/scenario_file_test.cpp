/// Tests of the scenario-file parser (exp/scenario_file.hpp).

#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <stdexcept>

#include "exp/scenario_file.hpp"

namespace coredis::exp {
namespace {

TEST(ScenarioFile, ParsesAllKeys) {
  const Scenario scenario = parse_scenario(R"(
# a commented line
n = 50
p = 600           # trailing comment
m_inf = 1e5
m_sup = 2.5e6
sequential_fraction = 0.1
mtbf_years = 10
downtime_seconds = 120
checkpoint_unit_cost = 0.5
period_rule = daly
fault_law = weibull
weibull_shape = 0.65
runs = 25
seed = 7
)");
  EXPECT_EQ(scenario.n, 50);
  EXPECT_EQ(scenario.p, 600);
  EXPECT_DOUBLE_EQ(scenario.m_inf, 1e5);
  EXPECT_DOUBLE_EQ(scenario.m_sup, 2.5e6);
  EXPECT_DOUBLE_EQ(scenario.sequential_fraction, 0.1);
  EXPECT_DOUBLE_EQ(scenario.mtbf_years, 10.0);
  EXPECT_DOUBLE_EQ(scenario.downtime_seconds, 120.0);
  EXPECT_DOUBLE_EQ(scenario.checkpoint_unit_cost, 0.5);
  EXPECT_EQ(scenario.period_rule, checkpoint::PeriodRule::Daly);
  EXPECT_EQ(scenario.fault_law, FaultLaw::Weibull);
  EXPECT_DOUBLE_EQ(scenario.weibull_shape, 0.65);
  EXPECT_EQ(scenario.runs, 25);
  EXPECT_EQ(scenario.seed, 7u);
}

TEST(ScenarioFile, UnspecifiedKeysKeepBaseValues) {
  Scenario base;
  base.n = 10;
  base.p = 100;
  base.runs = 3;
  const Scenario scenario = parse_scenario("mtbf_years = 42\n", base);
  EXPECT_EQ(scenario.n, 10);
  EXPECT_EQ(scenario.p, 100);
  EXPECT_EQ(scenario.runs, 3);
  EXPECT_DOUBLE_EQ(scenario.mtbf_years, 42.0);
}

TEST(ScenarioFile, ShortAliases) {
  const Scenario scenario = parse_scenario("f = 0.2\nc = 0.1\nd = 30\n");
  EXPECT_DOUBLE_EQ(scenario.sequential_fraction, 0.2);
  EXPECT_DOUBLE_EQ(scenario.checkpoint_unit_cost, 0.1);
  EXPECT_DOUBLE_EQ(scenario.downtime_seconds, 30.0);
}

TEST(ScenarioFile, RejectsUnknownKeysAndBadValues) {
  EXPECT_THROW((void)parse_scenario("typo_key = 3\n"), std::runtime_error);
  EXPECT_THROW((void)parse_scenario("n = abc\n"), std::runtime_error);
  EXPECT_THROW((void)parse_scenario("n 100\n"), std::runtime_error);
  EXPECT_THROW((void)parse_scenario("n =\n"), std::runtime_error);
  EXPECT_THROW((void)parse_scenario("fault_law = gamma\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_scenario("period_rule = fixed\n"),
               std::runtime_error);
}

TEST(ScenarioFile, RejectsInconsistentScenarios) {
  EXPECT_THROW((void)parse_scenario("n = 100\np = 50\n"), std::runtime_error);
  EXPECT_THROW((void)parse_scenario("m_inf = 10\nm_sup = 5\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_scenario("runs = 0\n"), std::runtime_error);
}

TEST(ScenarioFile, FormatParsesBackIdentically) {
  Scenario original;
  original.n = 33;
  original.p = 444;
  original.mtbf_years = 55.5;
  original.fault_law = FaultLaw::Weibull;
  original.weibull_shape = 0.51;
  original.period_rule = checkpoint::PeriodRule::Daly;
  original.seed = 123456789;
  const Scenario round_trip = parse_scenario(format_scenario(original));
  EXPECT_EQ(round_trip.n, original.n);
  EXPECT_EQ(round_trip.p, original.p);
  EXPECT_DOUBLE_EQ(round_trip.mtbf_years, original.mtbf_years);
  EXPECT_EQ(round_trip.fault_law, original.fault_law);
  EXPECT_DOUBLE_EQ(round_trip.weibull_shape, original.weibull_shape);
  EXPECT_EQ(round_trip.period_rule, original.period_rule);
  EXPECT_EQ(round_trip.seed, original.seed);
}

TEST(ScenarioFile, LoadsFromDisk) {
  const auto path =
      std::filesystem::temp_directory_path() / "coredis_scenario_test.txt";
  {
    std::ofstream file(path);
    file << "n = 5\np = 40\nruns = 2\n";
  }
  const Scenario scenario = load_scenario(path.string());
  EXPECT_EQ(scenario.n, 5);
  EXPECT_EQ(scenario.p, 40);
  std::filesystem::remove(path);
  EXPECT_THROW((void)load_scenario(path.string()), std::runtime_error);
}

}  // namespace
}  // namespace coredis::exp
