/// Tests of the scenario-file parser (exp/scenario_file.hpp).

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <limits>
#include <stdexcept>
#include <string>

#include "exp/scenario_file.hpp"
#include "util/rng.hpp"

namespace coredis::exp {
namespace {

TEST(ScenarioFile, ParsesAllKeys) {
  const Scenario scenario = parse_scenario(R"(
# a commented line
n = 50
p = 600           # trailing comment
m_inf = 1e5
m_sup = 2.5e6
sequential_fraction = 0.1
mtbf_years = 10
downtime_seconds = 120
checkpoint_unit_cost = 0.5
period_rule = daly
fault_law = weibull
weibull_shape = 0.65
runs = 25
seed = 7
)");
  EXPECT_EQ(scenario.n, 50);
  EXPECT_EQ(scenario.p, 600);
  EXPECT_DOUBLE_EQ(scenario.m_inf, 1e5);
  EXPECT_DOUBLE_EQ(scenario.m_sup, 2.5e6);
  EXPECT_DOUBLE_EQ(scenario.sequential_fraction, 0.1);
  EXPECT_DOUBLE_EQ(scenario.mtbf_years, 10.0);
  EXPECT_DOUBLE_EQ(scenario.downtime_seconds, 120.0);
  EXPECT_DOUBLE_EQ(scenario.checkpoint_unit_cost, 0.5);
  EXPECT_EQ(scenario.period_rule, checkpoint::PeriodRule::Daly);
  EXPECT_EQ(scenario.fault_law, FaultLaw::Weibull);
  EXPECT_DOUBLE_EQ(scenario.weibull_shape, 0.65);
  EXPECT_EQ(scenario.runs, 25);
  EXPECT_EQ(scenario.seed, 7u);
}

TEST(ScenarioFile, UnspecifiedKeysKeepBaseValues) {
  Scenario base;
  base.n = 10;
  base.p = 100;
  base.runs = 3;
  const Scenario scenario = parse_scenario("mtbf_years = 42\n", base);
  EXPECT_EQ(scenario.n, 10);
  EXPECT_EQ(scenario.p, 100);
  EXPECT_EQ(scenario.runs, 3);
  EXPECT_DOUBLE_EQ(scenario.mtbf_years, 42.0);
}

TEST(ScenarioFile, ShortAliases) {
  const Scenario scenario = parse_scenario("f = 0.2\nc = 0.1\nd = 30\n");
  EXPECT_DOUBLE_EQ(scenario.sequential_fraction, 0.2);
  EXPECT_DOUBLE_EQ(scenario.checkpoint_unit_cost, 0.1);
  EXPECT_DOUBLE_EQ(scenario.downtime_seconds, 30.0);
}

TEST(ScenarioFile, RejectsUnknownKeysAndBadValues) {
  EXPECT_THROW((void)parse_scenario("typo_key = 3\n"), std::runtime_error);
  EXPECT_THROW((void)parse_scenario("n = abc\n"), std::runtime_error);
  EXPECT_THROW((void)parse_scenario("n 100\n"), std::runtime_error);
  EXPECT_THROW((void)parse_scenario("n =\n"), std::runtime_error);
  EXPECT_THROW((void)parse_scenario("fault_law = gamma\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_scenario("period_rule = fixed\n"),
               std::runtime_error);
}

TEST(ScenarioFile, RejectsInconsistentScenarios) {
  EXPECT_THROW((void)parse_scenario("n = 100\np = 50\n"), std::runtime_error);
  EXPECT_THROW((void)parse_scenario("m_inf = 10\nm_sup = 5\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_scenario("runs = 0\n"), std::runtime_error);
}

TEST(ScenarioFile, ParsesArrivalKeys) {
  const Scenario scenario = parse_scenario(R"(
arrival_law = poisson
load_factor = 2.5
bulk_phases = 6
)");
  EXPECT_EQ(scenario.arrival_law, extensions::ArrivalLaw::Poisson);
  EXPECT_DOUBLE_EQ(scenario.load_factor, 2.5);
  EXPECT_EQ(scenario.bulk_phases, 6);
  // `load` aliases load_factor; the trace path keeps its case.
  const Scenario alias = parse_scenario(
      "load = 0.25\narrival_law = trace\narrival_trace = /Tmp/Trace.TXT\n");
  EXPECT_DOUBLE_EQ(alias.load_factor, 0.25);
  EXPECT_EQ(alias.arrival_law, extensions::ArrivalLaw::Trace);
  EXPECT_EQ(alias.arrival_trace, "/Tmp/Trace.TXT");
}

TEST(ScenarioFile, RejectsBadArrivalSettings) {
  // Unknown laws name the accepted list; cross-field rules fail loudly.
  try {
    (void)parse_scenario("arrival_law = uniform\n");
    FAIL() << "must throw";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("none|poisson|bulk|trace"),
              std::string::npos)
        << error.what();
  }
  EXPECT_THROW((void)parse_scenario("load_factor = 0\n"), std::runtime_error);
  EXPECT_THROW((void)parse_scenario("load_factor = -1\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_scenario("bulk_phases = 0\n"), std::runtime_error);
  // Trace law without a file, and a file without the trace law.
  EXPECT_THROW((void)parse_scenario("arrival_law = trace\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_scenario("arrival_trace = /tmp/t.txt\n"),
               std::runtime_error);
}

TEST(ScenarioFile, ArrivalKeysRoundTripThroughFormat) {
  Scenario original;
  original.arrival_law = extensions::ArrivalLaw::Bulk;
  original.load_factor = 0.125;
  original.bulk_phases = 3;
  const Scenario round_trip = parse_scenario(format_scenario(original));
  EXPECT_EQ(round_trip.arrival_law, original.arrival_law);
  EXPECT_DOUBLE_EQ(round_trip.load_factor, original.load_factor);
  EXPECT_EQ(round_trip.bulk_phases, original.bulk_phases);

  Scenario with_trace;
  with_trace.arrival_law = extensions::ArrivalLaw::Trace;
  with_trace.arrival_trace = "/tmp/releases.txt";
  const Scenario trace_trip = parse_scenario(format_scenario(with_trace));
  EXPECT_EQ(trace_trip.arrival_law, extensions::ArrivalLaw::Trace);
  EXPECT_EQ(trace_trip.arrival_trace, with_trace.arrival_trace);
}

TEST(ScenarioFile, FormatParsesBackIdentically) {
  Scenario original;
  original.n = 33;
  original.p = 444;
  original.mtbf_years = 55.5;
  original.fault_law = FaultLaw::Weibull;
  original.weibull_shape = 0.51;
  original.period_rule = checkpoint::PeriodRule::Daly;
  original.seed = 123456789;
  const Scenario round_trip = parse_scenario(format_scenario(original));
  EXPECT_EQ(round_trip.n, original.n);
  EXPECT_EQ(round_trip.p, original.p);
  EXPECT_DOUBLE_EQ(round_trip.mtbf_years, original.mtbf_years);
  EXPECT_EQ(round_trip.fault_law, original.fault_law);
  EXPECT_DOUBLE_EQ(round_trip.weibull_shape, original.weibull_shape);
  EXPECT_EQ(round_trip.period_rule, original.period_rule);
  EXPECT_EQ(round_trip.seed, original.seed);
}

void expect_exact_round_trip(const Scenario& original) {
  const std::string text = format_scenario(original);
  const Scenario r = parse_scenario(text);
  EXPECT_EQ(r.n, original.n) << text;
  EXPECT_EQ(r.p, original.p) << text;
  // EXPECT_EQ on doubles is exact (operator==): the format must
  // reproduce every bit, not just be close.
  EXPECT_EQ(r.m_inf, original.m_inf) << text;
  EXPECT_EQ(r.m_sup, original.m_sup) << text;
  EXPECT_EQ(r.sequential_fraction, original.sequential_fraction) << text;
  EXPECT_EQ(r.mtbf_years, original.mtbf_years) << text;
  EXPECT_EQ(r.downtime_seconds, original.downtime_seconds) << text;
  EXPECT_EQ(r.checkpoint_unit_cost, original.checkpoint_unit_cost) << text;
  EXPECT_EQ(r.period_rule, original.period_rule) << text;
  EXPECT_EQ(r.fault_law, original.fault_law) << text;
  EXPECT_EQ(r.weibull_shape, original.weibull_shape) << text;
  EXPECT_EQ(r.arrival_law, original.arrival_law) << text;
  EXPECT_EQ(r.load_factor, original.load_factor) << text;
  EXPECT_EQ(r.bulk_phases, original.bulk_phases) << text;
  EXPECT_EQ(r.arrival_trace, original.arrival_trace) << text;
  EXPECT_EQ(r.runs, original.runs) << text;
  EXPECT_EQ(r.seed, original.seed) << text;
}

TEST(ScenarioFile, RoundTripPropertyOverRandomizedScenarios) {
  Rng rng(20260726);
  const auto log_uniform = [&rng](double lo, double hi) {
    return std::exp(rng.uniform(std::log(lo), std::log(hi)));
  };
  for (int iteration = 0; iteration < 200; ++iteration) {
    Scenario s;
    s.n = 1 + static_cast<int>(rng.uniform_int(0, 499));
    s.p = 2 * s.n + static_cast<int>(rng.uniform_int(0, 5000));
    s.m_inf = 1.0 + log_uniform(1e-6, 1e12);
    s.m_sup = s.m_inf * log_uniform(1.0, 1e6);
    s.sequential_fraction = rng.uniform01();
    s.mtbf_years = iteration % 5 == 0 ? 0.0 : log_uniform(1e-3, 1e5);
    s.downtime_seconds = log_uniform(1e-3, 1e6);
    s.checkpoint_unit_cost = log_uniform(1e-9, 1e3);
    s.period_rule = iteration % 2 == 0 ? checkpoint::PeriodRule::Young
                                       : checkpoint::PeriodRule::Daly;
    s.fault_law =
        iteration % 3 == 0 ? FaultLaw::Weibull : FaultLaw::Exponential;
    s.weibull_shape = rng.uniform(0.05, 5.0);
    switch (iteration % 4) {
      case 0: s.arrival_law = extensions::ArrivalLaw::None; break;
      case 1: s.arrival_law = extensions::ArrivalLaw::Poisson; break;
      case 2: s.arrival_law = extensions::ArrivalLaw::Bulk; break;
      default:
        s.arrival_law = extensions::ArrivalLaw::Trace;
        s.arrival_trace = "/tmp/trace_" + std::to_string(iteration);
        break;
    }
    s.load_factor = log_uniform(1e-3, 1e3);
    s.bulk_phases = 1 + static_cast<int>(rng.uniform_int(0, 19));
    s.runs = 1 + static_cast<int>(rng.uniform_int(0, 99));
    s.seed = rng();  // the full 64-bit range, beyond double precision
    expect_exact_round_trip(s);
  }
}

TEST(ScenarioFile, RoundTripSurvivesExtremeValues) {
  Scenario s;
  s.n = 1;
  s.p = 2;
  s.m_inf = std::nextafter(1.0, 2.0);  // smallest legal window start
  s.m_sup = 1e300;
  s.sequential_fraction = 0x1.fffffffffffffp-1;  // largest double < 1
  s.mtbf_years = 1e-300;
  // Denormals are out: std::stod throws out_of_range on ERANGE underflow.
  s.downtime_seconds = std::numeric_limits<double>::min();
  s.checkpoint_unit_cost = std::numeric_limits<double>::max();
  s.weibull_shape = 0.12345678901234567;
  s.runs = std::numeric_limits<int>::max();
  s.seed = std::numeric_limits<std::uint64_t>::max();  // > 2^53
  expect_exact_round_trip(s);
}

TEST(ScenarioFile, SeedParsesAsFullWidthInteger) {
  const Scenario s =
      parse_scenario("n = 1\np = 2\nseed = 18446744073709551615\n");
  EXPECT_EQ(s.seed, std::numeric_limits<std::uint64_t>::max());
  // Scientific notation still works through the double path.
  EXPECT_EQ(parse_scenario("n = 1\np = 2\nseed = 1e6\n").seed, 1000000u);
  EXPECT_THROW((void)parse_scenario("seed = -3\n"), std::runtime_error);
  EXPECT_THROW((void)parse_scenario("seed = 12abc\n"), std::runtime_error);
  // A fractional seed is a typo, not a truncation request.
  EXPECT_THROW((void)parse_scenario("seed = 1.5\n"), std::runtime_error);
}

TEST(ScenarioFile, ParseErrorsNameTheOffendingLine) {
  try {
    (void)parse_scenario("n = 5\np = 10\nmtbf_years = oops\n");
    FAIL() << "must throw";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("mtbf_years = oops"),
              std::string::npos)
        << error.what();
  }
}

/// Run `text` through the parser and return the error message, failing
/// the test if it parses cleanly.
std::string parse_error_of(const std::string& text) {
  try {
    (void)parse_scenario(text);
  } catch (const std::runtime_error& error) {
    return error.what();
  }
  ADD_FAILURE() << "expected a parse error for: " << text;
  return "";
}

TEST(ScenarioFile, NumberErrorsNameTheOffendingKey) {
  // Scenario files are hand-edited; a bare "malformed number" without the
  // key makes a 40-line grid a guessing game. Each stod/stoull path must
  // echo the key and the rejected value.
  std::string error = parse_error_of("n = 12x\n");
  EXPECT_NE(error.find("key 'n'"), std::string::npos) << error;
  EXPECT_NE(error.find("12x"), std::string::npos) << error;

  error = parse_error_of("n = 1\np = 2\nmtbf_years = 1e999\n");
  EXPECT_NE(error.find("key 'mtbf_years'"), std::string::npos) << error;
  EXPECT_NE(error.find("out of range"), std::string::npos) << error;

  error = parse_error_of("n = 1\np = 2\nsequential_fraction = oops\n");
  EXPECT_NE(error.find("key 'sequential_fraction'"), std::string::npos)
      << error;
}

TEST(ScenarioFile, IntegerKeysRefuseToWrap) {
  // 3e9 overflows int; the cast must fail loudly instead of wrapping
  // through UB into a negative task count.
  std::string error = parse_error_of("n = 3e9\n");
  EXPECT_NE(error.find("key 'n'"), std::string::npos) << error;
  EXPECT_NE(error.find("does not fit a 32-bit integer"), std::string::npos)
      << error;
  error = parse_error_of("n = 1\np = 2\nruns = 1e18\n");
  EXPECT_NE(error.find("key 'runs'"), std::string::npos) << error;
}

TEST(ScenarioFile, SeedRejectionsNameTheKeyAndConstraint) {
  const std::string error = parse_error_of("n = 1\np = 2\nseed = -3\n");
  EXPECT_NE(error.find("seed"), std::string::npos) << error;
  EXPECT_NE(error.find("non-negative"), std::string::npos) << error;
}

TEST(ScenarioFile, EmptyValuesAreRejected) {
  EXPECT_NE(parse_error_of("n =\n").find("missing value"), std::string::npos);
  EXPECT_NE(parse_error_of("= 5\n").find("missing key"), std::string::npos);
}

TEST(ScenarioFile, LoadsFromDisk) {
  const auto path =
      std::filesystem::temp_directory_path() / "coredis_scenario_test.txt";
  {
    std::ofstream file(path);
    file << "n = 5\np = 40\nruns = 2\n";
  }
  const Scenario scenario = load_scenario(path.string());
  EXPECT_EQ(scenario.n, 5);
  EXPECT_EQ(scenario.p, 40);
  std::filesystem::remove(path);
  EXPECT_THROW((void)load_scenario(path.string()), std::runtime_error);
}

}  // namespace
}  // namespace coredis::exp
