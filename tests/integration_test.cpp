/// Integration tests across the whole stack: the campaign runner, the
/// paper-curve configurations, normalization, and end-to-end sanity of a
/// small-scale replica of the paper's campaign points.

#include <cstddef>
#include <gtest/gtest.h>
#include <string>
#include <vector>

#include "exp/report.hpp"
#include "exp/runner.hpp"

namespace coredis::exp {
namespace {

Scenario small_scenario() {
  Scenario scenario;
  scenario.n = 8;
  scenario.p = 64;
  scenario.mtbf_years = 10.0;
  scenario.runs = 6;
  scenario.seed = 1234;
  return scenario;
}

TEST(Runner, BaselineNormalizationIsOne) {
  const Scenario scenario = small_scenario();
  const auto result = run_point(scenario, {baseline_no_redistribution()});
  ASSERT_EQ(result.configs.size(), 1u);
  EXPECT_NEAR(result.configs[0].normalized.mean(), 1.0, 1e-12);
  EXPECT_EQ(result.configs[0].normalized.count(),
            static_cast<std::size_t>(scenario.runs));
}

TEST(Runner, PaperCurvesProduceSixSeries) {
  const Scenario scenario = small_scenario();
  const auto result = run_point(scenario, paper_curves());
  ASSERT_EQ(result.configs.size(), 6u);
  for (const ConfigOutcome& config : result.configs) {
    EXPECT_EQ(config.makespan.count(), static_cast<std::size_t>(scenario.runs));
    EXPECT_GT(config.makespan.mean(), 0.0);
    EXPECT_GT(config.normalized.mean(), 0.0);
  }
  // Fault-free with redistribution must be the best of all curves.
  const double fault_free = result.configs[5].normalized.mean();
  for (std::size_t c = 0; c + 1 < result.configs.size(); ++c)
    EXPECT_LE(fault_free, result.configs[c].normalized.mean() * 1.001);
}

TEST(Runner, HeuristicsBeatBaselineOnAverage) {
  Scenario scenario = small_scenario();
  scenario.n = 10;
  scenario.p = 100;
  scenario.runs = 8;
  const auto result = run_point(scenario, paper_curves());
  // All four heuristic combinations normalize below 1.
  for (std::size_t c = 1; c <= 4; ++c)
    EXPECT_LT(result.configs[c].normalized.mean(), 1.0)
        << result.configs[c].name;
}

TEST(Runner, DeterministicAcrossInvocations) {
  const Scenario scenario = small_scenario();
  const auto a = run_point(scenario, {ig_end_local()});
  const auto b = run_point(scenario, {ig_end_local()});
  EXPECT_DOUBLE_EQ(a.configs[0].makespan.mean(), b.configs[0].makespan.mean());
  EXPECT_DOUBLE_EQ(a.baseline_makespan.mean(), b.baseline_makespan.mean());
}

TEST(Runner, FaultFreeScenarioHasNoFaults) {
  Scenario scenario = small_scenario();
  scenario.mtbf_years = 0.0;  // fault-free campaign (Figures 5-6)
  const auto result = run_point(scenario, fault_free_curves());
  ASSERT_EQ(result.configs.size(), 3u);
  for (const ConfigOutcome& config : result.configs)
    EXPECT_EQ(config.effective_faults.mean(), 0.0);
  // Redistribution helps (heterogeneous default workload).
  EXPECT_LT(result.configs[1].normalized.mean(), 1.0);
  EXPECT_LT(result.configs[2].normalized.mean(), 1.0);
}

TEST(Report, TablesAndChecksRender) {
  Scenario scenario = small_scenario();
  Sweep sweep;
  sweep.x_label = "#procs";
  for (int p : {32, 64}) {
    scenario.p = p;
    sweep.x.push_back(p);
    sweep.points.push_back(run_point(scenario, {ig_end_local()}));
  }
  const std::string table = render_normalized_table(sweep);
  EXPECT_NE(table.find("#procs"), std::string::npos);
  EXPECT_NE(table.find("IteratedGreedy-EndLocal"), std::string::npos);

  const std::string makespans = render_makespan_table(sweep);
  EXPECT_NE(makespans.find("IteratedGreedy-EndLocal"), std::string::npos);

  std::vector<ShapeCheck> checks{{"demo", true, "x"}, {"demo2", false, ""}};
  const std::string rendered = render_checks(checks);
  EXPECT_NE(rendered.find("[PASS] demo"), std::string::npos);
  EXPECT_NE(rendered.find("[FAIL] demo2"), std::string::npos);

  EXPECT_GT(mean_normalized(sweep, 0), 0.0);
  EXPECT_GT(normalized_at(sweep, 0, 0), 0.0);
}

TEST(Runner, WeibullLawRunsEndToEnd) {
  Scenario scenario = small_scenario();
  scenario.fault_law = FaultLaw::Weibull;
  scenario.weibull_shape = 0.7;
  scenario.mtbf_years = 2.0;
  const auto result = run_point(scenario, {ig_end_local()});
  EXPECT_GT(result.configs[0].effective_faults.mean(), 0.0);
  EXPECT_GT(result.configs[0].normalized.mean(), 0.0);
  // Deterministic under the Weibull path too.
  const auto again = run_point(scenario, {ig_end_local()});
  EXPECT_DOUBLE_EQ(result.configs[0].makespan.mean(),
                   again.configs[0].makespan.mean());
}

TEST(Report, NormalizedPlotRendersEveryCurve) {
  Scenario scenario = small_scenario();
  Sweep sweep;
  sweep.x_label = "#procs";
  for (int p : {32, 64, 96}) {
    scenario.p = p;
    sweep.x.push_back(p);
    sweep.points.push_back(run_point(scenario, paper_curves()));
  }
  const std::string plot = render_normalized_plot(sweep);
  for (const ConfigOutcome& config : sweep.points.front().configs)
    EXPECT_NE(plot.find(config.name), std::string::npos) << config.name;
  EXPECT_NE(plot.find("#procs"), std::string::npos);
}

TEST(Runner, RedistributionCountersSurfaceInOutcomes) {
  Scenario scenario = small_scenario();
  scenario.mtbf_years = 2.0;
  const auto result = run_point(scenario, {ig_end_local(), stf_end_local()});
  for (const ConfigOutcome& config : result.configs)
    EXPECT_GT(config.redistributions.mean(), 0.0) << config.name;
}

TEST(Runner, MoreProcessorsNeverSlowTheBaselineMuch) {
  // Sanity on scaling direction: p = 80 baseline is no slower than p = 32
  // (same workload seed, fault-free).
  Scenario scenario = small_scenario();
  scenario.mtbf_years = 0.0;
  scenario.p = 32;
  const auto small = run_point(scenario, {baseline_no_redistribution()});
  scenario.p = 80;
  const auto large = run_point(scenario, {baseline_no_redistribution()});
  EXPECT_LE(large.baseline_makespan.mean(),
            small.baseline_makespan.mean() * 1.0001);
}

}  // namespace
}  // namespace coredis::exp
