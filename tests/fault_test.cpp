/// Tests of the fault-injection substrate, most importantly the
/// equivalence between the merged-Poisson exponential generator (used in
/// campaigns) and the literal per-processor construction of the paper's
/// fault model.

#include <cmath>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "fault/exponential.hpp"
#include "fault/per_processor.hpp"
#include "fault/trace.hpp"
#include "fault/weibull.hpp"
#include "util/stats.hpp"

namespace coredis::fault {
namespace {

TEST(ExponentialGenerator, TimesAreStrictlyIncreasing) {
  ExponentialGenerator gen(16, 1e-3, Rng(1));
  double last = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const auto fault = gen.next();
    ASSERT_TRUE(fault.has_value());
    EXPECT_GT(fault->time, last);
    EXPECT_GE(fault->processor, 0);
    EXPECT_LT(fault->processor, 16);
    last = fault->time;
  }
}

TEST(ExponentialGenerator, ZeroRateIsFaultFree) {
  ExponentialGenerator gen(8, 0.0, Rng(2));
  EXPECT_FALSE(gen.next().has_value());
}

TEST(ExponentialGenerator, RespectsHorizon) {
  ExponentialGenerator gen(8, 1e-2, Rng(3), 1000.0);
  int count = 0;
  while (auto fault = gen.next()) {
    EXPECT_LE(fault->time, 1000.0);
    ++count;
  }
  // rate = 8e-2/s over 1000s -> about 80 faults.
  EXPECT_GT(count, 40);
  EXPECT_LT(count, 160);
}

TEST(ExponentialGenerator, PlatformRateMatchesTheory) {
  // p processors with MTBF mu have platform MTBF mu/p (section 1).
  const int p = 50;
  const double mu = 1.0e5;
  ExponentialGenerator gen(p, 1.0 / mu, Rng(4));
  RunningStats gaps;
  double last = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const auto fault = gen.next();
    gaps.add(fault->time - last);
    last = fault->time;
  }
  EXPECT_NEAR(gaps.mean(), mu / p, 0.02 * mu / p);
}

TEST(ExponentialGenerator, ProcessorsUniform) {
  const int p = 10;
  ExponentialGenerator gen(p, 1.0, Rng(5));
  std::vector<int> hits(p, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++hits[static_cast<std::size_t>(gen.next()->processor)];
  for (int counted : hits)
    EXPECT_NEAR(counted, draws / p, 4 * std::sqrt(draws / p));
}

TEST(PerProcessorGenerator, MergedStreamIsSorted) {
  PerProcessorGenerator gen(
      8, [](Rng& rng) { return rng.exponential(1e-3); }, 11);
  double last = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const auto fault = gen.next();
    ASSERT_TRUE(fault.has_value());
    EXPECT_GE(fault->time, last);
    last = fault->time;
  }
}

/// The merged-Poisson shortcut must be statistically indistinguishable
/// from p independent exponential processors: compare inter-arrival
/// moments and per-processor hit shares (DESIGN.md section 2.1).
TEST(Generators, MergedPoissonMatchesPerProcessorStatistics) {
  const int p = 20;
  const double rate = 1.0 / 5000.0;
  const int samples = 60000;

  auto collect = [&](Generator& gen) {
    RunningStats gaps;
    std::vector<int> hits(p, 0);
    double last = 0.0;
    for (int i = 0; i < samples; ++i) {
      const auto fault = gen.next();
      gaps.add(fault->time - last);
      last = fault->time;
      ++hits[static_cast<std::size_t>(fault->processor)];
    }
    return std::pair{gaps, hits};
  };

  ExponentialGenerator merged(p, rate, Rng(21));
  PerProcessorGenerator literal(
      p, [rate](Rng& rng) { return rng.exponential(rate); }, 22);
  const auto [gaps_m, hits_m] = collect(merged);
  const auto [gaps_l, hits_l] = collect(literal);

  const double expected_gap = 1.0 / (rate * p);
  EXPECT_NEAR(gaps_m.mean(), expected_gap, 0.03 * expected_gap);
  EXPECT_NEAR(gaps_l.mean(), expected_gap, 0.03 * expected_gap);
  // Exponential gaps: CV = 1 for both constructions.
  EXPECT_NEAR(gaps_m.stddev() / gaps_m.mean(), 1.0, 0.03);
  EXPECT_NEAR(gaps_l.stddev() / gaps_l.mean(), 1.0, 0.03);
  for (int proc = 0; proc < p; ++proc) {
    EXPECT_NEAR(hits_m[static_cast<std::size_t>(proc)], samples / p,
                5 * std::sqrt(samples / p));
    EXPECT_NEAR(hits_l[static_cast<std::size_t>(proc)], samples / p,
                5 * std::sqrt(samples / p));
  }
}

TEST(WeibullGenerator, MeanMatchesRequestedMtbf) {
  const double mtbf = 2.0e4;
  WeibullGenerator gen(1, mtbf, 0.7, 31);
  RunningStats gaps;
  double last = 0.0;
  for (int i = 0; i < 40000; ++i) {
    const auto fault = gen.next();
    gaps.add(fault->time - last);
    last = fault->time;
  }
  // For a single processor the renewal gaps are the Weibull itself.
  EXPECT_NEAR(gaps.mean(), mtbf, 0.05 * mtbf);
  // Shape < 1 means burstier than exponential: CV > 1.
  EXPECT_GT(gaps.stddev() / gaps.mean(), 1.1);
}

TEST(WeibullGenerator, ScaleForMtbfInvertsGamma) {
  // shape 1: scale == mtbf (Gamma(2) = 1).
  EXPECT_NEAR(WeibullGenerator::scale_for_mtbf(100.0, 1.0), 100.0, 1e-9);
}

TEST(TraceGenerator, ReplaysSortedEvents) {
  TraceGenerator gen(4, {{30.0, 1}, {10.0, 0}, {20.0, 3}});
  EXPECT_EQ(gen.next()->time, 10.0);
  EXPECT_EQ(gen.next()->time, 20.0);
  const auto last = gen.next();
  EXPECT_EQ(last->time, 30.0);
  EXPECT_EQ(last->processor, 1);
  EXPECT_FALSE(gen.next().has_value());
}

TEST(RecordingGenerator, CapturesEverythingItEmits) {
  auto inner = std::make_unique<ExponentialGenerator>(4, 1e-2, Rng(41), 500.0);
  RecordingGenerator recorder(std::move(inner));
  std::vector<Fault> seen;
  while (auto fault = recorder.next()) seen.push_back(*fault);
  EXPECT_EQ(seen.size(), recorder.recorded().size());
  for (std::size_t i = 0; i < seen.size(); ++i)
    EXPECT_EQ(seen[i], recorder.recorded()[i]);
}

TEST(Trace, SaveLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "coredis_trace_test.txt")
          .string();
  const std::vector<Fault> events{{1.5, 0}, {2.25, 3}, {9.75, 1}};
  save_trace(path, 8, events);
  std::vector<Fault> loaded;
  const int processors = load_trace(path, loaded);
  EXPECT_EQ(processors, 8);
  ASSERT_EQ(loaded.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i].time, events[i].time);
    EXPECT_EQ(loaded[i].processor, events[i].processor);
  }
  std::filesystem::remove(path);
}

TEST(Trace, LoadRejectsMissingHeader) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "coredis_trace_bad.txt")
          .string();
  {
    std::ofstream file(path);
    file << "1.0 2\n";
  }
  std::vector<Fault> events;
  EXPECT_THROW(load_trace(path, events), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(NullGenerator, NeverFires) {
  NullGenerator gen(16);
  EXPECT_FALSE(gen.next().has_value());
  EXPECT_EQ(gen.processors(), 16);
}

}  // namespace
}  // namespace coredis::fault
