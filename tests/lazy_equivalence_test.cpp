/// \file lazy_equivalence_test.cpp
/// The incremental-replanning equivalence battery (DESIGN.md sections 6.5
/// and 8.2): the lazy scan machinery (carried EndLocal verdicts, the
/// prefilled flat IteratedGreedy regrow, the tournament tree) and the
/// online scheduler's incremental repair must reproduce the from-scratch
/// decision sequences byte for byte. Three layers:
///
///  * whole-run engine equivalence over randomized grids, both fault
///    laws, every policy pair — lazy (default) vs EngineConfig::
///    eager_scans in the same test run;
///  * online delta-replan vs full-replan (OnlineOptions::eager_replan)
///    over both generated arrival laws, plus the shared-workspace
///    overload vs the self-contained one;
///  * white-box invariants of the carried-verdict cache (the "lazy
///    queue"): a failed scan stores a verdict at the scanned pool and
///    current version, commits invalidate it, and within its horizon the
///    carried drop agrees with an eager re-scan.

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <gtest/gtest.h>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/detail/engine_state.hpp"
#include "core/engine.hpp"
#include "extensions/online.hpp"
#include "fault/exponential.hpp"
#include "fault/weibull.hpp"
#include "speedup/amdahl.hpp"
#include "speedup/synthetic.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace coredis {
namespace {

core::RunResult run_engine(const core::Pack& pack,
                           const checkpoint::Model& resilience, int p,
                           core::EngineConfig config, bool weibull,
                           std::uint64_t seed) {
  core::Engine engine(pack, resilience, p, config);
  const double mtbf = units::years(10.0);
  if (weibull) {
    fault::WeibullGenerator gen(p, mtbf, 0.7, seed);
    return engine.run(gen);
  }
  fault::ExponentialGenerator gen(p, 1.0 / mtbf, Rng(seed));
  return engine.run(gen);
}

void expect_identical(const core::RunResult& a, const core::RunResult& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.redistributions, b.redistributions);
  EXPECT_EQ(a.redistribution_cost, b.redistribution_cost);
  EXPECT_EQ(a.checkpoints_taken, b.checkpoints_taken);
  EXPECT_EQ(a.faults_effective, b.faults_effective);
  EXPECT_EQ(a.faults_discarded, b.faults_discarded);
  EXPECT_EQ(a.time_lost_to_faults, b.time_lost_to_faults);
  ASSERT_EQ(a.completion_times.size(), b.completion_times.size());
  for (std::size_t i = 0; i < a.completion_times.size(); ++i) {
    EXPECT_EQ(a.completion_times[i], b.completion_times[i]);
    EXPECT_EQ(a.final_allocation[i], b.final_allocation[i]);
  }
}

TEST(LazyEquivalence, EngineMatchesEagerScansOnRandomizedGrids) {
  // Randomized packs and platforms through every policy pair under both
  // fault laws: the lazy default and the eager reference must replay the
  // exact same simulation, double for double.
  const core::EndPolicy ends[] = {core::EndPolicy::Local,
                                  core::EndPolicy::Greedy};
  const core::FailurePolicy fails[] = {
      core::FailurePolicy::ShortestTasksFirst,
      core::FailurePolicy::IteratedGreedy};
  Rng rng(20260726ULL);
  for (int trial = 0; trial < 6; ++trial) {
    const int n = 4 + static_cast<int>(rng.uniform01() * 10);
    const int p = 2 * n * (2 + static_cast<int>(rng.uniform01() * 4));
    const auto seed = static_cast<std::uint64_t>(rng.uniform01() * 1e9);
    Rng pack_rng(seed);
    const core::Pack pack = core::Pack::uniform_random(
        n, 1.5e6, 2.5e6, std::make_shared<speedup::SyntheticModel>(0.08),
        pack_rng);
    const checkpoint::Model resilience({units::years(10.0), 60.0, 1.0,
                                        checkpoint::PeriodRule::Young, 0.0});
    for (const bool weibull : {false, true}) {
      for (const auto end : ends) {
        for (const auto fail : fails) {
          SCOPED_TRACE(::testing::Message()
                       << "n=" << n << " p=" << p << " weibull=" << weibull
                       << " end=" << to_string(end)
                       << " fail=" << to_string(fail) << " seed=" << seed);
          core::EngineConfig lazy;
          lazy.end_policy = end;
          lazy.failure_policy = fail;
          core::EngineConfig eager = lazy;
          eager.eager_scans = true;
          expect_identical(
              run_engine(pack, resilience, p, lazy, weibull, seed ^ 0xABCD),
              run_engine(pack, resilience, p, eager, weibull, seed ^ 0xABCD));
        }
      }
    }
  }
}

TEST(LazyEquivalence, ZeroRcAblationMatchesEagerScans) {
  Rng pack_rng(77ULL);
  const core::Pack pack = core::Pack::uniform_random(
      8, 1.5e6, 2.5e6, std::make_shared<speedup::SyntheticModel>(0.08),
      pack_rng);
  const checkpoint::Model resilience({units::years(10.0), 60.0, 1.0,
                                      checkpoint::PeriodRule::Young, 0.0});
  core::EngineConfig lazy;
  lazy.zero_redistribution_cost = true;
  core::EngineConfig eager = lazy;
  eager.eager_scans = true;
  expect_identical(run_engine(pack, resilience, 64, lazy, false, 11ULL),
                   run_engine(pack, resilience, 64, eager, false, 11ULL));
}

void expect_identical_online(const extensions::OnlineResult& a,
                             const extensions::OnlineResult& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.redistributions, b.redistributions);
  EXPECT_EQ(a.redistribution_cost, b.redistribution_cost);
  EXPECT_EQ(a.faults_effective, b.faults_effective);
  EXPECT_EQ(a.busy_processor_seconds, b.busy_processor_seconds);
  EXPECT_EQ(a.mean_queue_wait, b.mean_queue_wait);
  ASSERT_EQ(a.completion_times.size(), b.completion_times.size());
  for (std::size_t i = 0; i < a.completion_times.size(); ++i) {
    EXPECT_EQ(a.start_times[i], b.start_times[i]);
    EXPECT_EQ(a.completion_times[i], b.completion_times[i]);
    EXPECT_EQ(a.final_allocation[i], b.final_allocation[i]);
  }
}

TEST(OnlineDeltaEquivalence, RepairMatchesFullReplanAcrossArrivalLaws) {
  Rng rng(4242ULL);
  for (int trial = 0; trial < 4; ++trial) {
    const int n = 6 + static_cast<int>(rng.uniform01() * 8);
    const int p = 10 * n;
    const auto seed = static_cast<std::uint64_t>(rng.uniform01() * 1e9);
    Rng pack_rng(seed);
    const core::Pack pack = core::Pack::uniform_random(
        n, 1.5e6, 2.5e6, std::make_shared<speedup::SyntheticModel>(0.08),
        pack_rng);
    const checkpoint::Model resilience({units::years(5.0), 60.0, 1.0,
                                        checkpoint::PeriodRule::Young, 0.0});
    for (const auto law :
         {extensions::ArrivalLaw::Poisson, extensions::ArrivalLaw::Bulk}) {
      for (const double load : {0.5, 2.0}) {
        SCOPED_TRACE(::testing::Message()
                     << "n=" << n << " law=" << extensions::to_string(law)
                     << " load=" << load << " seed=" << seed);
        extensions::ArrivalSpec spec;
        spec.law = law;
        spec.load_factor = load;
        Rng arrivals(seed ^ 0xA881ULL);
        const std::vector<double> releases = extensions::make_release_times(
            spec, pack, resilience, p, arrivals);

        extensions::OnlineOptions full;
        full.eager_replan = true;
        fault::ExponentialGenerator ga(p, 1.0 / units::years(5.0),
                                       Rng(seed ^ 0xFA17ULL));
        const extensions::OnlineResult a =
            extensions::run_online(pack, resilience, p, releases, ga, full);

        // Delta repair, over a shared warm workspace (the campaign
        // runner's setup): both axes must be invisible in the results.
        core::Engine engine(pack, resilience, p, {});
        {
          fault::ExponentialGenerator warm(p, 1.0 / units::years(5.0),
                                           Rng(seed ^ 0xBEEF));
          (void)engine.run(warm);
        }
        fault::ExponentialGenerator gb(p, 1.0 / units::years(5.0),
                                       Rng(seed ^ 0xFA17ULL));
        const extensions::OnlineResult b = extensions::run_online(
            pack, resilience, p, releases, gb, engine.model(),
            engine.evaluator());
        expect_identical_online(a, b);
      }
    }
  }
}

// ---- white-box invariants of the carried-verdict cache -------------------

class ScanCacheTest : public ::testing::Test {
 protected:
  // Near-serial Amdahl profile: every task plateaus far below its 8
  // processors (Eq. 10's communication term would keep rewarding growth,
  // so the textbook profile isolates the plateau), and no EndLocal grant
  // can pay the redistribution cost — scans fail deterministically and
  // the carried verdicts are exercised.
  ScanCacheTest()
      : pack_({{2.0e6}, {1.6e6}, {2.4e6}, {1.9e6}},
              std::make_shared<speedup::AmdahlModel>(0.9995)),
        resilience_({units::years(100.0), 60.0, 1.0,
                     checkpoint::PeriodRule::Young, 0.0}),
        model_(pack_, resilience_),
        platform_(40),
        evaluator_(model_, 40) {
    state_.model = &model_;
    state_.platform = &platform_;
    state_.tr = &evaluator_;
    state_.tasks.resize(4);
    for (int i = 0; i < 4; ++i) {
      core::detail::TaskRuntime& task = state_.task(i);
      task.sigma = 8;
      task.alpha = 1.0;
      task.tlastR = 0.0;
      task.tU = evaluator_(i, 8, 1.0);
      state_.refresh_projection(i);
      platform_.acquire(i, 8);
    }
    // Leave 8 processors idle so EndLocal has a pool to scan.
    state_.ensure_lazy_state();
  }

  /// Clone the committed task state into a fresh eager EngineState (same
  /// model/evaluator caches — pure values — but no verdict carry).
  core::detail::EngineState eager_clone(platform::Platform& platform) {
    core::detail::EngineState fresh;
    fresh.model = &model_;
    fresh.platform = &platform;
    fresh.tr = &evaluator_;
    fresh.eager_scans = true;
    fresh.tasks = state_.tasks;
    for (int i = 0; i < fresh.n(); ++i) {
      if (!fresh.task(i).done) platform.acquire(i, fresh.task(i).sigma);
      fresh.refresh_projection(i);
    }
    return fresh;
  }

  core::Pack pack_;
  checkpoint::Model resilience_;
  core::ExpectedTimeModel model_;
  platform::Platform platform_;
  core::TrEvaluator evaluator_;
  core::detail::EngineState state_;
};

TEST_F(ScanCacheTest, FailedScanStoresVerdictAtScannedPoolAndVersion) {
  // Pick a time late enough that growing any task cannot pay off against
  // its committed expectation plus RC: the scan fails for every task and
  // each failure must leave a carried verdict at the current version
  // covering the scanned pool.
  const double t = 0.05 * model_.fault_free_time(0, 8);
  const bool changed = core::detail::end_local(state_, t);
  ASSERT_FALSE(changed);
  for (int i = 0; i < state_.n(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    EXPECT_EQ(state_.scan_cache[idx].version, state_.version[idx]);
    EXPECT_EQ(state_.scan_cache[idx].k, 8);  // the idle pool it covered
    EXPECT_GE(state_.scan_cache[idx].horizon, t);
  }
}

TEST_F(ScanCacheTest, CommitBumpsVersionAndKillsTheVerdict) {
  const double t = 0.05 * model_.fault_free_time(0, 8);
  ASSERT_FALSE(core::detail::end_local(state_, t));
  const auto cached_version = state_.scan_cache[0].version;

  // Commit a change on task 0 (grow by a pair): its verdict must die.
  std::vector<int> new_sigma{10, 8, 8, 8};
  std::vector<double> alpha_t;
  for (int i = 0; i < 4; ++i)
    alpha_t.push_back(state_.alpha_tentative(i, t + 1.0));
  state_.commit(t + 1.0, /*faulty=*/-1, new_sigma, alpha_t);
  EXPECT_NE(state_.version[0], cached_version);
  EXPECT_EQ(state_.scan_cache[1].version, state_.version[1]);  // untouched
}

TEST_F(ScanCacheTest, CarriedDropAgreesWithEagerWithinHorizon) {
  // Prime the verdicts, then step forward inside every horizon: the lazy
  // state (which drops on the carried verdicts without probing) and a
  // fresh eager state over the same committed tasks must agree that no
  // redistribution happens — and their task states must stay identical.
  const double t0 = 0.2 * model_.fault_free_time(0, 8);
  bool first = false;
  {
    // Clone the committed state BEFORE the lazy call can mutate it: the
    // first calls must agree, whatever the verdict.
    platform::Platform eager_platform(40);
    core::detail::EngineState fresh = eager_clone(eager_platform);
    first = core::detail::end_local(state_, t0);
    ASSERT_EQ(first, core::detail::end_local(fresh, t0));
  }
  double horizon = std::numeric_limits<double>::infinity();
  for (int i = 0; i < state_.n(); ++i)
    horizon = std::min(horizon, state_.scan_cache[static_cast<std::size_t>(i)].horizon);
  if (first || !std::isfinite(horizon) || horizon <= t0) return;

  for (const double frac : {0.25, 0.6, 1.0}) {
    const double t1 = t0 + frac * (horizon - t0);
    platform::Platform eager_platform(40);
    core::detail::EngineState fresh = eager_clone(eager_platform);
    const bool lazy_changed = core::detail::end_local(state_, t1);
    const bool eager_changed = core::detail::end_local(fresh, t1);
    ASSERT_EQ(lazy_changed, eager_changed) << "t1=" << t1;
    for (int i = 0; i < state_.n(); ++i) {
      EXPECT_EQ(state_.task(i).sigma, fresh.task(i).sigma);
      EXPECT_EQ(state_.task(i).tU, fresh.task(i).tU);
    }
  }
}

TEST(LazyEquivalence, WeibullHeavyIteratedGreedyBattery) {
  // The fig07-regime stressor at test scale: Weibull faults (shape 0.7 —
  // infant-mortality bursts), fragile MTBF, IteratedGreedy under both
  // end policies, several independent grids. Beyond re-proving the
  // carried-verdict machinery under its heaviest rebuild load, this
  // crosses the vector Eq. 4 pass (DESIGN.md section 6.6) with the
  // scalar reference: the lazy path prefs its regrow columns through
  // the batched SIMD probe_many while the eager branch issues scalar
  // one-slot probes, so lazy == eager here also proves SIMD == scalar
  // through whole simulations, double for double.
  Rng rng(0x5EEDF00DULL);
  for (int trial = 0; trial < 4; ++trial) {
    const int n = 10 + static_cast<int>(rng.uniform01() * 14);
    const int p = 10 * n;
    const auto seed = static_cast<std::uint64_t>(rng.uniform01() * 1e9);
    Rng pack_rng(seed);
    const core::Pack pack = core::Pack::uniform_random(
        n, 1.5e6, 2.5e6, std::make_shared<speedup::SyntheticModel>(0.08),
        pack_rng);
    // 2-year MTBF: roughly 5x the fault pressure of the randomized-grid
    // battery above, so Algorithm 5 rebuilds dominate the run.
    const checkpoint::Model resilience({units::years(2.0), 60.0, 1.0,
                                        checkpoint::PeriodRule::Young, 0.0});
    for (const auto end :
         {core::EndPolicy::Local, core::EndPolicy::Greedy}) {
      SCOPED_TRACE(::testing::Message() << "n=" << n << " p=" << p
                                        << " end=" << to_string(end)
                                        << " seed=" << seed);
      core::EngineConfig lazy;
      lazy.end_policy = end;
      lazy.failure_policy = core::FailurePolicy::IteratedGreedy;
      core::EngineConfig eager = lazy;
      eager.eager_scans = true;
      expect_identical(
          run_engine(pack, resilience, p, lazy, /*weibull=*/true,
                     seed ^ 0x77EBULL),
          run_engine(pack, resilience, p, eager, /*weibull=*/true,
                     seed ^ 0x77EBULL));
    }
  }
}

TEST(ParallelFor, EverySchedulePairMatchesAcrossThreadCounts) {
  // The schedule choice is a locality/balance optimization, never a
  // semantic one: for a body indexed by i, every (schedule, thread
  // count) pair — including the COREDIS_THREADS-driven default — must
  // fill the exact same result vector.
  constexpr std::size_t kCount = 97;  // not a multiple of any shard count
  const auto value_of = [](std::size_t i) {
    // Deterministic per-index payload with float content (so any
    // cross-thread reordering of *writes* would be caught bit-exactly).
    return std::exp(std::sin(static_cast<double>(i) * 0.37)) +
           static_cast<double>(i * i);
  };
  std::vector<double> reference(kCount);
  for (std::size_t i = 0; i < kCount; ++i) reference[i] = value_of(i);

  for (const Schedule schedule :
       {Schedule::Dynamic, Schedule::Static, Schedule::Stealing}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{3}, std::size_t{7}}) {
      std::vector<double> got(kCount, -1.0);
      ParallelOptions options;
      options.threads = threads;
      options.schedule = schedule;
      parallel_for(kCount, [&](std::size_t i) { got[i] = value_of(i); },
                   options);
      EXPECT_EQ(got, reference) << "schedule=" << static_cast<int>(schedule)
                                << " threads=" << threads;
    }
  }

  // COREDIS_THREADS-crossed: the env-driven default thread count feeds
  // every schedule through the same sharding arithmetic.
  for (const char* env_threads : {"2", "5"}) {
    ASSERT_EQ(0, setenv("COREDIS_THREADS", env_threads, 1));
    for (const Schedule schedule :
         {Schedule::Dynamic, Schedule::Static, Schedule::Stealing}) {
      std::vector<double> got(kCount, -1.0);
      ParallelOptions options;  // threads = 0: resolve from the env
      options.schedule = schedule;
      parallel_for(kCount, [&](std::size_t i) { got[i] = value_of(i); },
                   options);
      EXPECT_EQ(got, reference) << "schedule=" << static_cast<int>(schedule)
                                << " COREDIS_THREADS=" << env_threads;
    }
  }
  unsetenv("COREDIS_THREADS");
}

TEST(ParallelFor, StaticAndStealingSchedulesPropagateTheFirstError) {
  // Same exception contract as the dynamic schedule: a throwing body
  // aborts the loop promptly and the caller sees a propagated error.
  for (const Schedule schedule : {Schedule::Static, Schedule::Stealing}) {
    ParallelOptions options;
    options.threads = 3;
    options.schedule = schedule;
    EXPECT_THROW(
        parallel_for(64,
                     [](std::size_t i) {
                       if (i % 5 == 0) throw std::runtime_error("boom");
                     },
                     options),
        std::runtime_error);
  }
}

TEST(ProbeMany, BitIdenticalToScalarQueries) {
  Rng pack_rng(5150ULL);
  const core::Pack pack = core::Pack::uniform_random(
      5, 1.5e6, 2.5e6, std::make_shared<speedup::SyntheticModel>(0.08),
      pack_rng);
  const checkpoint::Model resilience({units::years(25.0), 60.0, 1.0,
                                      checkpoint::PeriodRule::Young, 0.0});
  const core::ExpectedTimeModel model(pack, resilience);
  Rng rng(99ULL);
  std::vector<double> batch(64);
  std::vector<double> reference(64);
  for (int trial = 0; trial < 20; ++trial) {
    const int task = static_cast<int>(rng.uniform01() * 5);
    const double alpha = trial == 0 ? 0.0 : rng.uniform01();
    const int h_begin = static_cast<int>(rng.uniform01() * 10);
    const int h_end = h_begin + 1 + static_cast<int>(rng.uniform01() * 60);
    batch.resize(static_cast<std::size_t>(h_end - h_begin));
    reference.resize(batch.size());
    model.probe_many(task, h_begin, h_end, alpha, batch.data());
    model.probe_many_reference(task, h_begin, h_end, alpha,
                               reference.data());
    for (std::size_t h = 0; h < batch.size(); ++h) {
      // Exact bit equality: both paths must run the same raw_kernel over
      // the same cached coefficient bits.
      EXPECT_EQ(batch[h], reference[h])
          << "task=" << task << " alpha=" << alpha << " h="
          << h_begin + static_cast<int>(h);
    }
  }
}

}  // namespace
}  // namespace coredis
