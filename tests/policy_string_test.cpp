/// \file policy_string_test.cpp
/// The policy-string grammar battery (DESIGN.md section 10): the
/// round-trip property `resolve(format(p)).canonical == p.canonical`
/// fuzzed over every *registered* policy with randomized option values
/// (new policies are auto-covered — the tables iterate
/// registered_policies(), never a hand-kept list), plus a malformed-
/// string table asserting that every parse error is a std::runtime_error
/// naming the offending token — never an abort, never a silent default.

#include <cstdint>
#include <gtest/gtest.h>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "policy/options.hpp"
#include "policy/registry.hpp"
#include "util/rng.hpp"

namespace coredis::policy {
namespace {

/// Draw a random valid value for `spec` as text (not necessarily
/// canonical text — e.g. "0.2500" or "007" — so the round trip also
/// exercises canonicalization).
std::string random_value(const OptionSpec& spec, Rng& rng) {
  switch (spec.type) {
    case OptionType::Int: {
      const long long lo =
          spec.bounded() ? static_cast<long long>(spec.min_value) : 1;
      const long long span =
          spec.bounded()
              ? std::min<long long>(
                    static_cast<long long>(spec.max_value) - lo, 1000)
              : 1000;
      const auto value =
          lo + static_cast<long long>(rng.uniform01() * (span + 1));
      return std::to_string(value);
    }
    case OptionType::Double: {
      const double lo = spec.bounded() ? spec.min_value : 0.0;
      const double hi = spec.bounded() ? spec.max_value : 100.0;
      const double value = lo + rng.uniform01() * (hi - lo);
      return canonical_double(value);
    }
    case OptionType::Bool:
      return rng.uniform01() < 0.5 ? "true" : "false";
    case OptionType::Enum: {
      const auto pick = static_cast<std::size_t>(
          rng.uniform01() * static_cast<double>(spec.choices.size()));
      return spec.choices[std::min(pick, spec.choices.size() - 1)];
    }
  }
  return "";
}

TEST(PolicyStringRoundTrip, CanonicalFormsAreFixpointsForEveryPolicy) {
  // parse(format(p)) == p over randomized option values, every
  // registered policy, including spellings with redundant whitespace
  // and default-valued options (which the canonical form drops).
  Rng rng(0xF0110C + 20260807ULL);
  for (const PolicyInfo& info : registered_policies()) {
    for (int trial = 0; trial < 20; ++trial) {
      std::string text = info.name;
      if (!info.options.empty()) {
        text += "( ";
        bool first = true;
        for (const OptionSpec& spec : info.options) {
          // Randomly include each option; excluded ones take defaults.
          if (rng.uniform01() < 0.4) continue;
          if (!first) text += " , ";
          first = false;
          text += spec.name;
          text += " = ";
          text += random_value(spec, rng);
        }
        text += " )";
        if (first) text = info.name;  // all skipped: bare name
      }
      SCOPED_TRACE(::testing::Message()
                   << "policy=" << info.name << " text='" << text << "'");
      const ResolvedPolicy once = resolve(text);
      const ResolvedPolicy twice = resolve(once.canonical);
      EXPECT_EQ(once.canonical, twice.canonical);
      ASSERT_EQ(once.options.values().size(), twice.options.values().size());
      for (std::size_t i = 0; i < once.options.values().size(); ++i)
        EXPECT_EQ(once.options.values()[i], twice.options.values()[i]);
      // The canonical string instantiates (the factory accepts every
      // validated option set).
      EXPECT_NE(twice.make(), nullptr);
    }
  }
}

TEST(PolicyStringRoundTrip, BareNameIsTheCanonicalAllDefaultsForm) {
  for (const PolicyInfo& info : registered_policies()) {
    SCOPED_TRACE(info.name);
    EXPECT_EQ(resolve(info.name).canonical, info.name);
    // Spelling every default explicitly collapses back to the bare name.
    std::string text = info.name;
    if (!info.options.empty()) {
      text += '(';
      for (std::size_t i = 0; i < info.options.size(); ++i) {
        if (i > 0) text += ", ";
        text += info.options[i].name;
        text += '=';
        text += info.options[i].default_value;
      }
      text += ')';
    }
    EXPECT_EQ(resolve(text).canonical, info.name);
  }
}

TEST(PolicyStringRoundTrip, DoublesUseShortestRoundTrip) {
  EXPECT_EQ(resolve("bandit(explore=0.2500)").canonical,
            "bandit(explore=0.25)");
  EXPECT_EQ(resolve("bandit(window=007)").canonical, "bandit(window=7)");
  EXPECT_EQ(resolve("reshape(gain=0.1)").canonical, "reshape(gain=0.1)");
}

/// Assert resolve(text) throws a std::runtime_error whose message
/// contains every listed fragment (the offending token among them).
void expect_error(const std::string& text,
                  const std::vector<std::string>& fragments) {
  SCOPED_TRACE("text='" + text + "'");
  try {
    (void)resolve(text);
    FAIL() << "expected resolve to throw";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    for (const std::string& fragment : fragments)
      EXPECT_NE(what.find(fragment), std::string::npos)
          << "message '" << what << "' lacks '" << fragment << "'";
  }
}

TEST(PolicyStringErrors, MalformedStringsNameTheOffendingToken) {
  expect_error("", {"empty policy string"});
  expect_error("   ", {"empty policy string"});
  expect_error("7pack", {"expected a policy name", "7pack"});
  expect_error("no_such_policy", {"unknown policy", "no_such_policy"});
  expect_error("pack(end=local", {"unbalanced parentheses", "missing ')'"});
  expect_error("pack(end local)", {"expected '='", "end"});
  expect_error("pack(end=)", {"empty value", "end"});
  expect_error("pack(end=local, end=greedy)", {"duplicate option", "end"});
  expect_error("pack(end=sideways)",
               {"pack", "end", "none|local|greedy", "sideways"});
  expect_error("easy(pairs=x)", {"easy", "pairs", "integer", "x"});
  expect_error("easy(pairs=0)", {"easy", "pairs", "integer", "0"});
  expect_error("bandit(explore=2)", {"bandit", "explore", "[0, 1]", "2"});
  expect_error("bandit(explore=nan)", {"bandit", "explore", "nan"});
  expect_error("bandit(window=0)", {"bandit", "window", "0"});
  expect_error("pack() extra", {"trailing characters", "extra"});
  expect_error("pack(end=lo(cal))", {"unexpected '('", "end"});
}

TEST(PolicyStringErrors, UnknownKeysListTheAcceptedOnesForEveryPolicy) {
  // Table-driven over the registry: a policy added tomorrow is covered
  // the moment it registers.
  for (const PolicyInfo& info : registered_policies()) {
    SCOPED_TRACE(info.name);
    std::vector<std::string> fragments = {info.name, "definitely_not_real"};
    for (const OptionSpec& spec : info.options) fragments.push_back(spec.name);
    expect_error(info.name + "(definitely_not_real=1)", fragments);
  }
}

TEST(PolicyStringErrors, UnknownPolicyListsTheRegisteredNames) {
  std::vector<std::string> fragments = {"unknown policy", "zzz"};
  for (const PolicyInfo& info : registered_policies())
    fragments.push_back(info.name);
  expect_error("zzz", fragments);
}

TEST(PolicyStringErrors, ConfigSelectorSuggestsThePresets) {
  try {
    (void)exp::parse_config_set("not_a_policy_or_preset");
    FAIL() << "expected parse_config_set to throw";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("not_a_policy_or_preset"), std::string::npos) << what;
    EXPECT_NE(what.find("paper|fault_free|online"), std::string::npos) << what;
  }
}

TEST(PolicyRegistry, ListingCoversEveryPolicyWithTypedOptions) {
  const std::string table = list_policies_markdown();
  EXPECT_NE(table.find("| policy | options (default) | description |"),
            std::string::npos);
  for (const PolicyInfo& info : registered_policies()) {
    SCOPED_TRACE(info.name);
    EXPECT_NE(table.find("`" + info.name + "`"), std::string::npos);
    for (const OptionSpec& spec : info.options)
      EXPECT_NE(
          table.find("`" + spec.name + "=" + spec.default_value + "`"),
          std::string::npos);
  }
}

TEST(PolicyRegistry, FindPolicyAndRegistrationGuards) {
  EXPECT_NE(find_policy("pack"), nullptr);
  EXPECT_EQ(find_policy("nope"), nullptr);
  EXPECT_THROW(register_policy({"pack", "dup", {}, nullptr}),
               std::logic_error);
  EXPECT_THROW(register_policy({"bad name", "space", {}, nullptr}),
               std::logic_error);
}

}  // namespace
}  // namespace coredis::policy
