/// Cost-model tests (exp/cost_model.hpp): the structural prior must
/// order cells the way the committed bench history does (bigger packs,
/// Weibull faults and whole-allocation heuristics cost more), online
/// observations must monotonically refine predictions toward measured
/// truth and bridge calibration onto never-observed points, and the LPT
/// permutation must put predicted-expensive cells first while degrading
/// to plain index order on homogeneous grids.

#include <cmath>
#include <cstddef>
#include <gtest/gtest.h>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "exp/campaign.hpp"
#include "exp/cost_model.hpp"
#include "exp/storage.hpp"

namespace coredis::exp {
namespace {

Scenario sized(int n, int p) {
  Scenario scenario;
  scenario.n = n;
  scenario.p = p;
  return scenario;
}

TEST(CostPrior, TracksTheKnobsThatDriveCellCost) {
  const std::vector<ConfigSpec> configs = paper_curves();
  // Bigger packs and platforms cost more.
  EXPECT_GT(cell_cost_prior(sized(1000, 10000), configs),
            cell_cost_prior(sized(100, 1000), configs));
  EXPECT_GT(cell_cost_prior(sized(100, 2000), configs),
            cell_cost_prior(sized(100, 1000), configs));
  // Weibull faults cost more than exponential at the same size.
  Scenario weibull = sized(100, 1000);
  weibull.fault_law = FaultLaw::Weibull;
  EXPECT_GT(cell_cost_prior(weibull, configs),
            cell_cost_prior(sized(100, 1000), configs));
  // Online arrivals add bookkeeping.
  Scenario online = sized(100, 1000);
  online.arrival_law = extensions::ArrivalLaw::Poisson;
  EXPECT_GT(cell_cost_prior(online, configs),
            cell_cost_prior(sized(100, 1000), configs));
  // IteratedGreedy rebuilds the allocation per fault; the rollback-only
  // baseline is the cheapest configuration set.
  const Scenario point = sized(100, 1000);
  EXPECT_GT(cell_cost_prior(point, parse_config_set("ig_local")),
            cell_cost_prior(point, parse_config_set("stf_local")));
  EXPECT_GT(cell_cost_prior(point, parse_config_set("stf_local")),
            cell_cost_prior(point, parse_config_set("baseline")));
  // More configurations per cell, more work.
  EXPECT_GT(cell_cost_prior(point, paper_curves()),
            cell_cost_prior(point, parse_config_set("ig_local")));
  EXPECT_GT(cell_cost_prior(point, parse_config_set("baseline")), 0.0);
}

TEST(CostModel, PredictsThePriorUntilObserved) {
  const std::vector<Scenario> points{sized(100, 1000), sized(1000, 10000)};
  const std::vector<ConfigSpec> configs = paper_curves();
  const CostModel model(points, configs);
  EXPECT_EQ(model.observations(0), 0u);
  EXPECT_DOUBLE_EQ(model.predict(0), cell_cost_prior(points[0], configs));
  EXPECT_DOUBLE_EQ(model.predict(1), cell_cost_prior(points[1], configs));
}

TEST(CostModel, ObservationsBridgeCalibrationOntoUnseenPoints) {
  const std::vector<Scenario> points{sized(100, 1000), sized(1000, 10000)};
  const std::vector<ConfigSpec> configs = paper_curves();
  CostModel model(points, configs);
  // Observing only point 0 rescales point 1's prediction into seconds
  // through the learned prior->seconds ratio, preserving the priors'
  // relative order.
  const double seconds = 0.002;
  model.observe(0, seconds);
  EXPECT_EQ(model.observations(0), 1u);
  EXPECT_EQ(model.observations(1), 0u);
  EXPECT_DOUBLE_EQ(model.predict(0), seconds);
  const double ratio = seconds / cell_cost_prior(points[0], configs);
  EXPECT_DOUBLE_EQ(model.predict(1),
                   cell_cost_prior(points[1], configs) * ratio);
  EXPECT_GT(model.predict(1), model.predict(0));
}

TEST(CostModel, RefinementIsMonotoneTowardAStableTruth) {
  const std::vector<Scenario> points{sized(100, 1000)};
  CostModel model(points, paper_curves());
  // Start the estimate far from the truth, then feed the true cost
  // repeatedly: the error must shrink on every observation and converge.
  const double truth = 0.004;
  model.observe(0, 50.0 * truth);
  double error = std::abs(model.predict(0) - truth);
  for (int i = 0; i < 40; ++i) {
    model.observe(0, truth);
    const double refined = std::abs(model.predict(0) - truth);
    EXPECT_LT(refined, error) << "observation " << i;
    error = refined;
  }
  EXPECT_NEAR(model.predict(0), truth, truth * 0.01);
}

TEST(CostModel, IgnoresClockGarbage) {
  const std::vector<Scenario> points{sized(100, 1000)};
  CostModel model(points, paper_curves());
  model.observe(0, 0.003);
  const double before = model.predict(0);
  model.observe(0, 0.0);
  model.observe(0, -1.0);
  model.observe(0, std::nan(""));
  model.observe(0, std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(model.predict(0), before);
  EXPECT_EQ(model.observations(0), 1u);
}

TEST(CostModel, SpanObservationSplitsSecondsByPrediction) {
  const std::vector<Scenario> points{sized(100, 1000), sized(1000, 10000)};
  CostModel model(points, paper_curves());
  const std::unique_ptr<CellQueue> queue =
      make_cell_queue(StorageKind::Ram, {2, 2});
  // One block covering all four cells, measured as a single number —
  // the per-point estimates must split it in prediction proportion and
  // sum back to the block total.
  model.observe_span(*queue, 0, 4, 1.0);
  EXPECT_EQ(model.observations(0), 2u);
  EXPECT_EQ(model.observations(1), 2u);
  EXPECT_GT(model.predict(1), model.predict(0));
  EXPECT_NEAR(2.0 * model.predict(0) + 2.0 * model.predict(1), 1.0, 1e-9);
}

TEST(LptOrder, ExpensiveCellsFirstTiesByIndex) {
  const std::vector<Scenario> points{sized(100, 1000), sized(1000, 10000)};
  const CostModel model(points, paper_curves());
  const std::unique_ptr<CellQueue> queue =
      make_cell_queue(StorageKind::Ram, {3, 2});
  const std::vector<std::size_t> order = lpt_cell_order(model, *queue, 0, 5);
  // Cells 3,4 (point 1) lead, then 0,1,2 (point 0); ties keep index
  // order within each point.
  const std::vector<std::size_t> expected{3, 4, 0, 1, 2};
  EXPECT_EQ(order, expected);
}

TEST(LptOrder, HomogeneousGridKeepsIndexOrder) {
  const std::vector<Scenario> points{sized(100, 1000), sized(100, 1000)};
  const CostModel model(points, paper_curves());
  const std::unique_ptr<CellQueue> queue =
      make_cell_queue(StorageKind::Ram, {2, 2});
  std::vector<std::size_t> identity(4);
  std::iota(identity.begin(), identity.end(), std::size_t{0});
  EXPECT_EQ(lpt_cell_order(model, *queue, 0, 4), identity);
}

TEST(LptOrder, HonoursTheSpanOffset) {
  const std::vector<Scenario> points{sized(100, 1000), sized(1000, 10000)};
  const CostModel model(points, paper_curves());
  const std::unique_ptr<CellQueue> queue =
      make_cell_queue(StorageKind::Ram, {3, 2});
  // A resumed span starting at cell 2 still orders point-1 cells first;
  // indices are relative to the span start.
  const std::vector<std::size_t> order = lpt_cell_order(model, *queue, 2, 3);
  const std::vector<std::size_t> expected{1, 2, 0};
  EXPECT_EQ(order, expected);
}

TEST(LptOrder, ReordersAfterObservationsFlipTheRanking) {
  const std::vector<Scenario> points{sized(100, 1000), sized(1000, 10000)};
  CostModel model(points, paper_curves());
  const std::unique_ptr<CellQueue> queue =
      make_cell_queue(StorageKind::Ram, {2, 2});
  // Measured reality contradicts the prior: point 0 is the slow one.
  for (int i = 0; i < 8; ++i) {
    model.observe(0, 0.100);
    model.observe(1, 0.001);
  }
  const std::vector<std::size_t> order = lpt_cell_order(model, *queue, 0, 4);
  const std::vector<std::size_t> expected{0, 1, 2, 3};
  EXPECT_EQ(order, expected);
}

TEST(GridRunOptionsKnobs, ParseOrderAndSchedule) {
  EXPECT_EQ(parse_cell_order("index"), CellOrder::Index);
  EXPECT_EQ(parse_cell_order("LPT"), CellOrder::CostLpt);
  EXPECT_THROW((void)parse_cell_order("random"), std::runtime_error);
  EXPECT_EQ(parse_schedule("dynamic"), Schedule::Dynamic);
  EXPECT_EQ(parse_schedule("static"), Schedule::Static);
  EXPECT_EQ(parse_schedule("Stealing"), Schedule::Stealing);
  EXPECT_THROW((void)parse_schedule("chase-lev"), std::runtime_error);
}

TEST(GridRunFeedsTheModel, EveryCellObservedOnce) {
  const Campaign campaign =
      parse_campaign("n = 4, 8\np = 16\nruns = 3\nconfigs = baseline\n");
  const std::vector<Scenario> points{campaign.grid.point(0),
                                     campaign.grid.point(1)};
  CostModel model(points, campaign.configs);
  GridRunOptions options;
  options.cost_model = &model;
  const std::vector<PointResult> results =
      run_grid(points, campaign.configs, options);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(model.observations(0), 3u);
  EXPECT_EQ(model.observations(1), 3u);
  EXPECT_GT(model.predict(0), 0.0);
}

}  // namespace
}  // namespace coredis::exp
