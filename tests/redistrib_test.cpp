/// Tests of the redistribution mechanics: the Eq. 7/9 cost model, the
/// bipartite transfer graphs, and — as a property over a (j, k) sweep —
/// the equality between the constructive Konig edge-coloring round count
/// and the closed form max(min(j,k), |k-j|).

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <gtest/gtest.h>
#include <set>
#include <utility>
#include <vector>

#include "redistrib/bipartite.hpp"
#include "redistrib/cost.hpp"

namespace coredis::redistrib {
namespace {

TEST(Cost, PaperFigureExample) {
  // Figure 3: j = 4 -> k = 6 has Delta = 4 rounds.
  EXPECT_EQ(rounds(4, 6), 4);
  // Eq. 7: RC = max(j, k-j) * (1/k) * (m/j).
  EXPECT_DOUBLE_EQ(cost(4, 6, 1200.0), 4.0 * (1.0 / 6.0) * (1200.0 / 4.0));
}

TEST(Cost, GrowthAndShrinkAreConsistent) {
  // Shrink 6 -> 4: max(min(6,4), 2) = 4 rounds.
  EXPECT_EQ(rounds(6, 4), 4);
  EXPECT_DOUBLE_EQ(cost(6, 4, 1200.0), 4.0 * (1.0 / 4.0) * (1200.0 / 6.0));
}

TEST(Cost, DoublingKeepsRoundsAtJ) {
  // j -> 2j: max(min(j,2j), j) = j rounds.
  EXPECT_EQ(rounds(8, 16), 8);
}

TEST(Cost, GrowthCostMatchesGeneralForm) {
  EXPECT_DOUBLE_EQ(growth_cost(2, 10, 500.0), cost(2, 10, 500.0));
  EXPECT_DEATH((void)growth_cost(10, 2, 500.0), "precondition");
}

TEST(Cost, RejectsDegenerateArguments) {
  EXPECT_DEATH((void)rounds(4, 4), "precondition");
  EXPECT_DEATH((void)cost(0, 4, 10.0), "precondition");
  EXPECT_DEATH((void)cost(4, 2, 0.0), "precondition");
}

TEST(TransferGraph, GrowthIsCompleteBipartite) {
  const BipartiteGraph graph = make_transfer_graph(4, 6);
  EXPECT_EQ(graph.left_count, 4);
  EXPECT_EQ(graph.right_count, 2);
  EXPECT_EQ(graph.edges.size(), 8u);
  EXPECT_EQ(graph.max_degree(), 4);
}

TEST(TransferGraph, ShrinkSendsLeaversToStayers) {
  const BipartiteGraph graph = make_transfer_graph(6, 4);
  EXPECT_EQ(graph.left_count, 2);   // leavers
  EXPECT_EQ(graph.right_count, 4);  // stayers
  EXPECT_EQ(graph.max_degree(), 4);
}

/// A proper edge coloring never repeats a color at a vertex and uses
/// exactly Delta colors (Konig's theorem, constructive).
void expect_proper_delta_coloring(const BipartiteGraph& graph) {
  const std::vector<int> colors = edge_color(graph);
  ASSERT_EQ(colors.size(), graph.edges.size());
  const int delta = graph.max_degree();
  std::set<std::pair<int, int>> left_seen;   // (vertex, color)
  std::set<std::pair<int, int>> right_seen;
  int max_color = -1;
  for (std::size_t i = 0; i < graph.edges.size(); ++i) {
    const int color = colors[i];
    ASSERT_GE(color, 0);
    ASSERT_LT(color, delta);
    max_color = std::max(max_color, color);
    EXPECT_TRUE(left_seen.insert({graph.edges[i].left, color}).second)
        << "color repeated at left vertex";
    EXPECT_TRUE(right_seen.insert({graph.edges[i].right, color}).second)
        << "color repeated at right vertex";
  }
  // All Delta colors are needed at a maximum-degree vertex.
  EXPECT_EQ(max_color, delta - 1);
}

class RoundCountProperty
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(RoundCountProperty, KonigColoringMatchesClosedForm) {
  const auto [j, k] = GetParam();
  const BipartiteGraph graph = make_transfer_graph(j, k);
  expect_proper_delta_coloring(graph);
  EXPECT_EQ(graph.max_degree(), rounds(j, k))
      << "j=" << j << " k=" << k;
  const auto schedule = round_schedule(graph);
  EXPECT_EQ(static_cast<int>(schedule.size()), rounds(j, k));
  // Every edge dispatched exactly once.
  std::size_t dispatched = 0;
  for (const auto& round : schedule) {
    dispatched += round.size();
    // No processor appears twice within one round.
    std::set<int> lefts;
    std::set<int> rights;
    for (const TransferEdge& e : round) {
      EXPECT_TRUE(lefts.insert(e.left).second);
      EXPECT_TRUE(rights.insert(e.right).second);
    }
  }
  EXPECT_EQ(dispatched, graph.edges.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RoundCountProperty,
    ::testing::Values(std::pair{1, 2}, std::pair{2, 4}, std::pair{4, 6},
                      std::pair{6, 4}, std::pair{2, 16}, std::pair{16, 2},
                      std::pair{8, 10}, std::pair{10, 8}, std::pair{3, 7},
                      std::pair{7, 3}, std::pair{12, 20}, std::pair{20, 12},
                      std::pair{1, 31}, std::pair{31, 1}, std::pair{16, 17},
                      std::pair{40, 64}, std::pair{64, 40}));

/// Cost sanity over a broad sweep: positive, and the round count is never
/// below either side's degree bound.
TEST(CostProperty, BroadSweepSanity) {
  for (int j = 1; j <= 40; ++j) {
    for (int k = 1; k <= 40; ++k) {
      if (j == k) continue;
      const int r = rounds(j, k);
      EXPECT_GE(r, std::abs(k - j));
      EXPECT_GE(r, std::min(j, k));
      EXPECT_GT(cost(j, k, 1.0e6), 0.0);
    }
  }
}

}  // namespace
}  // namespace coredis::redistrib
