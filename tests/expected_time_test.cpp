/// Tests of the expected completion-time model (Eqs. 2-6): closed-form
/// checks against hand-computed values, the fault-free limit, Eq. 6
/// monotonicity, and the TrEvaluator cache consistency.

#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "core/expected_time.hpp"
#include "speedup/synthetic.hpp"
#include "util/units.hpp"

namespace coredis::core {
namespace {

Pack make_pack(std::vector<double> sizes) {
  std::vector<TaskSpec> tasks;
  for (double m : sizes) tasks.push_back({m});
  return Pack(std::move(tasks), std::make_shared<speedup::SyntheticModel>(0.08));
}

checkpoint::Model faulty_model(double mtbf_years = 100.0, double c = 1.0) {
  return checkpoint::Model(
      {units::years(mtbf_years), 60.0, c, checkpoint::PeriodRule::Young, 0.0});
}

checkpoint::Model fault_free_model() {
  return checkpoint::Model({0.0, 60.0, 1.0, checkpoint::PeriodRule::Young, 0.0});
}

TEST(ExpectedTime, FaultFreeDegeneratesToLinearWork) {
  const Pack pack = make_pack({2.0e6});
  const checkpoint::Model resilience = fault_free_model();
  const ExpectedTimeModel model(pack, resilience);
  for (int j : {2, 4, 16}) {
    const double t = model.fault_free_time(0, j);
    EXPECT_DOUBLE_EQ(model.expected_time_raw(0, j, 1.0), t);
    EXPECT_DOUBLE_EQ(model.expected_time_raw(0, j, 0.25), 0.25 * t);
    EXPECT_DOUBLE_EQ(model.simulated_duration(0, j, 0.5), 0.5 * t);
    EXPECT_EQ(model.checkpoint_count(0, j, 1.0), 0.0);
    EXPECT_EQ(model.checkpoint_cost(0, j), 0.0);
    EXPECT_TRUE(std::isinf(model.period(0, j)));
  }
}

TEST(ExpectedTime, CheckpointCountMatchesEq2) {
  const Pack pack = make_pack({2.0e6});
  const checkpoint::Model resilience = faulty_model();
  const ExpectedTimeModel model(pack, resilience);
  const int j = 4;
  const double alpha = 0.8;
  const double tau = model.period(0, j);
  const double cost = model.checkpoint_cost(0, j);
  const double expected =
      std::floor(alpha * model.fault_free_time(0, j) / (tau - cost));
  EXPECT_EQ(model.checkpoint_count(0, j, alpha), expected);
  EXPECT_GT(expected, 0.0);
}

TEST(ExpectedTime, RawMatchesEquation4ByHand) {
  const Pack pack = make_pack({2.0e6});
  const checkpoint::Model resilience = faulty_model();
  const ExpectedTimeModel model(pack, resilience);
  const int j = 8;
  const double alpha = 0.6;

  const double lambda_j = resilience.task_rate(j);
  const double t_ij = model.fault_free_time(0, j);
  const double tau = model.period(0, j);
  const double cost = model.checkpoint_cost(0, j);
  const double recovery = model.recovery_time(0, j);
  const double n_ff = std::floor(alpha * t_ij / (tau - cost));
  const double tau_last = alpha * t_ij - n_ff * (tau - cost);
  const double expected = std::exp(lambda_j * recovery) *
                          (1.0 / lambda_j + resilience.downtime()) *
                          (n_ff * (std::exp(lambda_j * tau) - 1.0) +
                           (std::exp(lambda_j * tau_last) - 1.0));
  EXPECT_NEAR(model.expected_time_raw(0, j, alpha), expected,
              1e-9 * expected);
}

TEST(ExpectedTime, ExceedsFaultFreeTimeUnderFaults) {
  const Pack pack = make_pack({2.0e6});
  const checkpoint::Model resilience = faulty_model();
  const ExpectedTimeModel model(pack, resilience);
  for (int j : {2, 8, 64})
    EXPECT_GT(model.expected_time_raw(0, j, 1.0),
              model.fault_free_time(0, j));
}

TEST(ExpectedTime, HigherFailureRateCostsMore) {
  const Pack pack = make_pack({2.0e6});
  const checkpoint::Model robust = faulty_model(100.0);
  const checkpoint::Model fragile = faulty_model(5.0);
  const ExpectedTimeModel robust_model(pack, robust);
  const ExpectedTimeModel fragile_model(pack, fragile);
  EXPECT_GT(fragile_model.expected_time_raw(0, 8, 1.0),
            robust_model.expected_time_raw(0, 8, 1.0));
}

TEST(ExpectedTime, Eq6ClampIsNonIncreasingInProcessors) {
  const Pack pack = make_pack({2.0e6});
  const checkpoint::Model resilience = faulty_model(20.0);
  const ExpectedTimeModel model(pack, resilience);
  double previous = model.expected_time(0, 2, 1.0);
  for (int j = 4; j <= 512; j += 2) {
    const double here = model.expected_time(0, j, 1.0);
    EXPECT_LE(here, previous * (1.0 + 1e-12)) << "j=" << j;
    previous = here;
  }
}

TEST(ExpectedTime, ClampEqualsMinOfRawPrefix) {
  const Pack pack = make_pack({1.7e6});
  const checkpoint::Model resilience = faulty_model(10.0);
  const ExpectedTimeModel model(pack, resilience);
  const double alpha = 0.9;
  double best = std::numeric_limits<double>::infinity();
  for (int j = 2; j <= 200; j += 2) {
    best = std::min(best, model.expected_time_raw(0, j, alpha));
    EXPECT_DOUBLE_EQ(model.expected_time(0, j, alpha), best);
  }
}

TEST(ExpectedTime, ZeroAlphaIsFree) {
  const Pack pack = make_pack({2.0e6});
  const checkpoint::Model resilience = faulty_model();
  const ExpectedTimeModel model(pack, resilience);
  EXPECT_EQ(model.expected_time_raw(0, 8, 0.0), 0.0);
  EXPECT_EQ(model.simulated_duration(0, 8, 0.0), 0.0);
}

TEST(ExpectedTime, SimulatedDurationAddsCheckpointOverhead) {
  const Pack pack = make_pack({2.0e6});
  const checkpoint::Model resilience = faulty_model();
  const ExpectedTimeModel model(pack, resilience);
  const int j = 4;
  const double work = model.fault_free_time(0, j);
  const double duration = model.simulated_duration(0, j, 1.0);
  EXPECT_GT(duration, work);
  const double tau = model.period(0, j);
  const double cost = model.checkpoint_cost(0, j);
  const double periods = std::floor(work / (tau - cost));
  EXPECT_NEAR(duration, work + periods * cost, cost + 1e-9);
}

TEST(ExpectedTime, SimulatedDurationExactBoundarySkipsFinalCheckpoint) {
  // Construct alpha so the remaining work is exactly one period: the
  // trailing checkpoint is unnecessary, duration equals the work.
  const Pack pack = make_pack({2.0e6});
  const checkpoint::Model resilience = faulty_model();
  const ExpectedTimeModel model(pack, resilience);
  const int j = 4;
  const double tau = model.period(0, j);
  const double cost = model.checkpoint_cost(0, j);
  const double t_ij = model.fault_free_time(0, j);
  const double alpha = (tau - cost) / t_ij;
  ASSERT_LE(alpha, 1.0);
  EXPECT_NEAR(model.simulated_duration(0, j, alpha), tau - cost, 1.0);
}

TEST(TrEvaluator, AgreesWithDirectClamp) {
  const Pack pack = make_pack({2.0e6, 1.6e6});
  const checkpoint::Model resilience = faulty_model(30.0);
  const ExpectedTimeModel model(pack, resilience);
  TrEvaluator evaluator(model, 256);
  for (int task = 0; task < 2; ++task)
    for (double alpha : {1.0, 0.5, 0.125})
      for (int j : {2, 8, 32, 256})
        EXPECT_DOUBLE_EQ(evaluator(task, j, alpha),
                         model.expected_time(task, j, alpha))
            << "task=" << task << " j=" << j << " alpha=" << alpha;
}

TEST(TrEvaluator, HandlesAlternatingAlphaKeys) {
  // IteratedGreedy probes two alphas per task; both slots must serve.
  const Pack pack = make_pack({2.0e6});
  const checkpoint::Model resilience = faulty_model();
  const ExpectedTimeModel model(pack, resilience);
  TrEvaluator evaluator(model, 64);
  const double a1 = 1.0;
  const double a2 = 0.4;
  for (int round = 0; round < 4; ++round) {
    for (int j = 2; j <= 64; j += 2) {
      EXPECT_DOUBLE_EQ(evaluator(0, j, a1), model.expected_time(0, j, a1));
      EXPECT_DOUBLE_EQ(evaluator(0, j, a2), model.expected_time(0, j, a2));
    }
  }
}

TEST(TrEvaluator, InvalidateForcesRebuild) {
  const Pack pack = make_pack({2.0e6});
  const checkpoint::Model resilience = faulty_model();
  const ExpectedTimeModel model(pack, resilience);
  TrEvaluator evaluator(model, 32);
  const double before = evaluator(0, 32, 1.0);
  evaluator.invalidate(0);
  EXPECT_DOUBLE_EQ(evaluator(0, 32, 1.0), before);
}

TEST(TrEvaluator, EpochsOnlySteerEvictionNeverValues) {
  const Pack pack = make_pack({2.0e6, 1.7e6});
  const checkpoint::Model resilience = faulty_model();
  const ExpectedTimeModel model(pack, resilience);
  TrEvaluator evaluator(model, 64);
  // Rotate through more alphas than there are slots, across several
  // events: every answer must still match the uncached clamp.
  const double alphas[] = {1.0, 0.8, 0.55, 0.31, 0.8, 1.0, 0.07};
  for (int event = 0; event < 3; ++event) {
    evaluator.begin_event();
    for (double alpha : alphas)
      for (int task = 0; task < 2; ++task)
        for (int j : {2, 16, 64})
          EXPECT_DOUBLE_EQ(evaluator(task, j, alpha),
                           model.expected_time(task, j, alpha));
  }
}

TEST(TrEvaluator, ColumnMatchesOperatorAndSurvivesSecondBind) {
  const Pack pack = make_pack({2.0e6});
  const checkpoint::Model resilience = faulty_model();
  const ExpectedTimeModel model(pack, resilience);
  TrEvaluator evaluator(model, 64);
  evaluator.begin_event();
  const TrEvaluator::Column committed = evaluator.column(0, 0.9);
  const TrEvaluator::Column tentative = evaluator.column(0, 0.6);
  for (int j = 2; j <= 64; j += 2) {
    EXPECT_DOUBLE_EQ(committed(j), model.expected_time(0, j, 0.9));
    EXPECT_DOUBLE_EQ(tentative(j), model.expected_time(0, j, 0.6));
  }
  // Interleaved probes through operator() must not disturb the pinned
  // columns (the at-most-two-live-columns contract).
  EXPECT_DOUBLE_EQ(evaluator(0, 64, 0.9), committed(64));
  EXPECT_DOUBLE_EQ(tentative(64), model.expected_time(0, 64, 0.6));
}

// --- Coefficient-table kernel equivalence (property test) ----------------
//
// The cached expected_time_raw / simulated_duration must match the
// straight-line reference evaluation to 1e-12 relative over random
// (task, j, alpha) probes — in practice they are bit-identical, because
// the table stores exactly the intermediates the reference recomputes.

TEST(ExpectedTime, CachedKernelMatchesReferenceOverRandomProbes) {
  Rng rng(20260726);
  const Pack pack = Pack::uniform_random(
      8, 1.5e6, 2.5e6, std::make_shared<speedup::SyntheticModel>(0.08), rng);
  for (const double mtbf_years : {5.0, 100.0, 1000.0}) {
    const checkpoint::Model resilience = faulty_model(mtbf_years);
    const ExpectedTimeModel model(pack, resilience);
    for (int probe = 0; probe < 2000; ++probe) {
      const int task = static_cast<int>(rng.uniform(0.0, 8.0 - 1e-9));
      const int j = 1 + static_cast<int>(rng.uniform(0.0, 512.0 - 1e-9));
      const double alpha = probe % 7 == 0 ? 1.0 : rng.uniform(0.0, 1.0);
      const double cached = model.expected_time_raw(task, j, alpha);
      const double reference =
          model.expected_time_raw_reference(task, j, alpha);
      EXPECT_NEAR(cached, reference, 1e-12 * std::max(1.0, reference))
          << "task=" << task << " j=" << j << " alpha=" << alpha
          << " mtbf=" << mtbf_years;
      const double dur = model.simulated_duration(task, j, alpha);
      const double dur_ref = model.simulated_duration_reference(task, j, alpha);
      EXPECT_NEAR(dur, dur_ref, 1e-12 * std::max(1.0, dur_ref))
          << "task=" << task << " j=" << j << " alpha=" << alpha
          << " mtbf=" << mtbf_years;
    }
  }
}

TEST(ExpectedTime, CachedKernelMatchesReferenceFaultFree) {
  Rng rng(7);
  const Pack pack = Pack::uniform_random(
      4, 1.5e6, 2.5e6, std::make_shared<speedup::SyntheticModel>(0.08), rng);
  const checkpoint::Model resilience = fault_free_model();
  const ExpectedTimeModel model(pack, resilience);
  for (int probe = 0; probe < 500; ++probe) {
    const int task = static_cast<int>(rng.uniform(0.0, 4.0 - 1e-9));
    const int j = 1 + static_cast<int>(rng.uniform(0.0, 128.0 - 1e-9));
    const double alpha = rng.uniform(0.0, 1.0);
    EXPECT_EQ(model.expected_time_raw(task, j, alpha),
              model.expected_time_raw_reference(task, j, alpha));
    EXPECT_EQ(model.simulated_duration(task, j, alpha),
              model.simulated_duration_reference(task, j, alpha));
  }
}

}  // namespace
}  // namespace coredis::core
