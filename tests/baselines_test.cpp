/// Tests of the scheduling baselines the paper positions itself against:
/// dedicated-mode execution (section 1), batch scheduling with EASY
/// backfilling (section 2.3), and the energy accounting used to compare
/// them with co-scheduling.

#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <memory>
#include <utility>
#include <vector>

#include "core/energy.hpp"
#include "core/engine.hpp"
#include "extensions/batch.hpp"
#include "extensions/dedicated.hpp"
#include "fault/exponential.hpp"
#include "speedup/synthetic.hpp"
#include "speedup/table_profile.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace coredis {
namespace {

checkpoint::Model fault_free_model() {
  return checkpoint::Model({0.0, 60.0, 1.0, checkpoint::PeriodRule::Young, 0.0});
}

checkpoint::Model faulty_model(double mtbf_years) {
  return checkpoint::Model({units::years(mtbf_years), 60.0, 1.0,
                            checkpoint::PeriodRule::Young, 0.0});
}

TEST(Energy, BusySecondsIntegratesOwnedSegments) {
  std::vector<core::AllocationSegment> timeline{
      {0, 0.0, 10.0, 4, true},
      {1, 0.0, 20.0, 2, true},
      {2, 5.0, 15.0, 8, false},  // surrendered stretch: not counted
  };
  EXPECT_DOUBLE_EQ(core::busy_processor_seconds(timeline), 40.0 + 40.0);
}

TEST(Energy, PlatformEnergyArithmetic) {
  const core::EnergyModel model{100.0, 30.0};
  // p = 10 over 100 s: 1000 processor-seconds, 400 busy.
  EXPECT_DOUBLE_EQ(model.platform_energy(100.0, 10, 400.0),
                   100.0 * 400.0 + 30.0 * 600.0);
}

TEST(Energy, RejectsBusyBeyondCapacity) {
  const core::EnergyModel model{100.0, 30.0};
  EXPECT_DEATH((void)model.platform_energy(10.0, 2, 100.0), "precondition");
}

TEST(Dedicated, FaultFreeTotalIsSumOfSoloRuns) {
  const core::Pack pack({{2.0e6}, {1.5e6}},
                        std::make_shared<speedup::SyntheticModel>(0.08));
  const checkpoint::Model resilience = fault_free_model();
  const auto result =
      extensions::run_dedicated(pack, resilience, 64, 7, 0.0);
  ASSERT_EQ(result.task_durations.size(), 2u);
  EXPECT_DOUBLE_EQ(result.total_makespan,
                   result.task_durations[0] + result.task_durations[1]);
  EXPECT_EQ(result.faults_effective, 0);
  for (int allocation : result.allocations) {
    EXPECT_GE(allocation, 2);
    EXPECT_LE(allocation, 64);
  }
}

TEST(Dedicated, CoSchedulingBeatsDedicatedOnImperfectlyParallelPacks) {
  // The motivating claim of the paper's introduction: with a sequential
  // fraction, dedicating the full platform to each task wastes it.
  Rng rng(9);
  const core::Pack pack = core::Pack::uniform_random(
      6, 1.0e6, 2.5e6, std::make_shared<speedup::SyntheticModel>(0.08), rng);
  const checkpoint::Model resilience = fault_free_model();
  const int p = 64;

  const auto dedicated =
      extensions::run_dedicated(pack, resilience, p, 3, 0.0);
  core::Engine engine(pack, resilience, p,
                      {core::EndPolicy::Local, core::FailurePolicy::None,
                       false});
  fault::NullGenerator faults(p);
  const double co_scheduled = engine.run(faults).makespan;
  EXPECT_LT(co_scheduled, dedicated.total_makespan);
}

TEST(Dedicated, CoSchedulingAlsoSavesEnergy) {
  Rng rng(10);
  const core::Pack pack = core::Pack::uniform_random(
      6, 1.0e6, 2.5e6, std::make_shared<speedup::SyntheticModel>(0.08), rng);
  const checkpoint::Model resilience = fault_free_model();
  const int p = 64;
  const core::EnergyModel energy{100.0, 30.0};

  const auto dedicated =
      extensions::run_dedicated(pack, resilience, p, 3, 0.0);
  const double dedicated_energy = energy.platform_energy(
      dedicated.total_makespan, p, dedicated.busy_processor_seconds);

  core::EngineConfig config{core::EndPolicy::Local,
                            core::FailurePolicy::None, false};
  config.record_timeline = true;
  core::Engine engine(pack, resilience, p, config);
  fault::NullGenerator faults(p);
  const core::RunResult run = engine.run(faults);
  EXPECT_LT(energy.platform_energy(run, p), dedicated_energy);
}

core::Pack crafted_batch_pack() {
  // Per-task table profiles pin down the rigid requests and durations:
  // job0: best-useful 2 procs, 60 s; job1: 4 procs, 110 s;
  // job2: 2 procs, 30 s.
  std::vector<core::TaskSpec> tasks;
  tasks.push_back({1000.0, std::make_shared<speedup::TableModel>(
                               1000.0,
                               std::vector<std::pair<int, double>>{
                                   {1, 100.0}, {2, 60.0}})});
  tasks.push_back({1000.0, std::make_shared<speedup::TableModel>(
                               1000.0,
                               std::vector<std::pair<int, double>>{
                                   {1, 400.0}, {2, 220.0}, {4, 110.0}})});
  tasks.push_back({1000.0, std::make_shared<speedup::TableModel>(
                               1000.0,
                               std::vector<std::pair<int, double>>{
                                   {1, 40.0}, {2, 30.0}})});
  return core::Pack(std::move(tasks),
                    std::make_shared<speedup::SyntheticModel>(0.08));
}

TEST(Batch, PlainFcfsRespectsSubmissionOrder) {
  const core::Pack pack = crafted_batch_pack();
  const checkpoint::Model resilience = fault_free_model();
  extensions::BatchConfig config;
  config.backfilling = false;
  const auto result =
      extensions::run_batch(pack, resilience, 4, config, 1, 0.0);
  EXPECT_EQ(result.allocations, (std::vector<int>{2, 4, 2}));
  // job0 at 0-60; job1 waits for the full platform: 60-170 (110 s on 4
  // processors); job2: 170-200.
  EXPECT_DOUBLE_EQ(result.start_times[0], 0.0);
  EXPECT_DOUBLE_EQ(result.start_times[1], 60.0);
  EXPECT_DOUBLE_EQ(result.start_times[2], 170.0);
  EXPECT_DOUBLE_EQ(result.makespan, 200.0);
  EXPECT_EQ(result.backfilled_jobs, 0);
}

TEST(Batch, EasyBackfillingFillsTheHole) {
  const core::Pack pack = crafted_batch_pack();
  const checkpoint::Model resilience = fault_free_model();
  extensions::BatchConfig config;
  config.backfilling = true;
  const auto result =
      extensions::run_batch(pack, resilience, 4, config, 1, 0.0);
  // job2 (30 s on 2 procs) slides in front of the blocked head without
  // delaying it: shadow time is job0's end at 60.
  EXPECT_DOUBLE_EQ(result.start_times[2], 0.0);
  EXPECT_DOUBLE_EQ(result.start_times[1], 60.0);  // head not delayed
  EXPECT_DOUBLE_EQ(result.makespan, 170.0);
  EXPECT_EQ(result.backfilled_jobs, 1);
}

TEST(Batch, BackfillNeverDelaysTheHeadOnCraftedInstance) {
  // A long backfill candidate (needs the shadow processors) must NOT be
  // started: job2 variant with 300 s on 2 procs.
  std::vector<core::TaskSpec> tasks;
  tasks.push_back({1000.0, std::make_shared<speedup::TableModel>(
                               1000.0,
                               std::vector<std::pair<int, double>>{
                                   {1, 100.0}, {2, 60.0}})});
  tasks.push_back({1000.0, std::make_shared<speedup::TableModel>(
                               1000.0,
                               std::vector<std::pair<int, double>>{
                                   {1, 400.0}, {2, 220.0}, {4, 110.0}})});
  tasks.push_back({1000.0, std::make_shared<speedup::TableModel>(
                               1000.0,
                               std::vector<std::pair<int, double>>{
                                   {1, 400.0}, {2, 300.0}})});
  const core::Pack pack(std::move(tasks),
                        std::make_shared<speedup::SyntheticModel>(0.08));
  const checkpoint::Model resilience = fault_free_model();
  extensions::BatchConfig config;
  config.backfilling = true;
  const auto result =
      extensions::run_batch(pack, resilience, 4, config, 1, 0.0);
  EXPECT_DOUBLE_EQ(result.start_times[1], 60.0);  // head still on time
  EXPECT_EQ(result.backfilled_jobs, 0);
}

TEST(Batch, FixedPairsRuleRequestsUniformAllocations) {
  const core::Pack pack = crafted_batch_pack();
  const checkpoint::Model resilience = fault_free_model();
  extensions::BatchConfig config;
  config.rule = extensions::RequestRule::FixedPairs;
  config.fixed_pairs = 1;
  const auto result =
      extensions::run_batch(pack, resilience, 4, config, 1, 0.0);
  EXPECT_EQ(result.allocations, (std::vector<int>{2, 2, 2}));
  // Two jobs run side by side from the start on the 4 processors.
  EXPECT_DOUBLE_EQ(result.start_times[0], 0.0);
  EXPECT_DOUBLE_EQ(result.start_times[1], 0.0);
}

TEST(Batch, BackfillingNeverWorseThanPlainFcfs) {
  // EASY only ever moves work earlier without delaying the head, so on
  // identical fault streams it cannot lose to plain FCFS (fault-free
  // here, where the argument is exact).
  Rng rng(13);
  for (int round = 0; round < 5; ++round) {
    const core::Pack pack = core::Pack::uniform_random(
        6, 2.0e5, 2.5e6, std::make_shared<speedup::SyntheticModel>(0.08),
        rng);
    const checkpoint::Model resilience = fault_free_model();
    extensions::BatchConfig plain;
    plain.backfilling = false;
    plain.rule = extensions::RequestRule::FixedPairs;
    plain.fixed_pairs = 4;
    extensions::BatchConfig easy = plain;
    easy.backfilling = true;
    const auto without =
        extensions::run_batch(pack, resilience, 20, plain, 1, 0.0);
    const auto with =
        extensions::run_batch(pack, resilience, 20, easy, 1, 0.0);
    EXPECT_LE(with.makespan, without.makespan * (1.0 + 1e-9));
  }
}

TEST(Dedicated, AccumulatesFaultsAcrossSoloRuns) {
  Rng rng(14);
  const core::Pack pack = core::Pack::uniform_random(
      4, 1.5e6, 2.5e6, std::make_shared<speedup::SyntheticModel>(0.08), rng);
  const checkpoint::Model resilience = faulty_model(1.0);
  const auto faulty =
      extensions::run_dedicated(pack, resilience, 32, 5, units::years(1.0));
  const auto clean = extensions::run_dedicated(pack, resilience, 32, 5, 0.0);
  EXPECT_GT(faulty.faults_effective, 0);
  EXPECT_GT(faulty.total_makespan, clean.total_makespan);
}

TEST(Batch, SurvivesFaultStorms) {
  Rng rng(11);
  const core::Pack pack = core::Pack::uniform_random(
      8, 5.0e5, 2.5e6, std::make_shared<speedup::SyntheticModel>(0.08), rng);
  const checkpoint::Model resilience = faulty_model(1.0);
  extensions::BatchConfig config;
  const auto result = extensions::run_batch(pack, resilience, 32, config, 5,
                                            units::years(1.0));
  EXPECT_GT(result.faults_effective, 0);
  EXPECT_GT(result.makespan, 0.0);
  for (int i = 0; i < 8; ++i) {
    EXPECT_GE(result.completion_times[static_cast<std::size_t>(i)],
              result.start_times[static_cast<std::size_t>(i)]);
  }
}

TEST(Batch, CoSchedulingWithRedistributionBeatsBatchOnAverage) {
  // Section 2.3's contrast, made quantitative: malleable co-scheduling
  // with redistribution against rigid EASY batch on the same workloads
  // and fault streams.
  RunningStats batch_stats;
  RunningStats cosched_stats;
  const checkpoint::Model resilience = faulty_model(10.0);
  const int p = 64;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng = Rng::child(1234, seed);
    const core::Pack pack = core::Pack::uniform_random(
        8, 1.0e6, 2.5e6, std::make_shared<speedup::SyntheticModel>(0.08),
        rng);
    const auto batch = extensions::run_batch(
        pack, resilience, p, {}, seed, units::years(10.0));
    batch_stats.add(batch.makespan);
    core::Engine engine(pack, resilience, p,
                        {core::EndPolicy::Local,
                         core::FailurePolicy::IteratedGreedy, false});
    fault::ExponentialGenerator faults(p, 1.0 / units::years(10.0),
                                       Rng::child(seed, 0));
    cosched_stats.add(engine.run(faults).makespan);
  }
  EXPECT_LT(cosched_stats.mean(), batch_stats.mean());
}

}  // namespace
}  // namespace coredis
