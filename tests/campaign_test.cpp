/// Campaign orchestrator tests (exp/campaign.hpp): grid parsing with
/// line-numbered errors, whole-grid execution equivalence with run_point,
/// byte-identical JSONL under any thread count, the interrupt/resume
/// contract (truncated and corrupted-tail files), and the distributed
/// shard fabric (shard ranges, worker shard files, byte-identical merge).

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/campaign.hpp"
#include "exp/cost_model.hpp"
#include "exp/runner.hpp"
#include "exp/scenario_file.hpp"
#include "exp/storage.hpp"
#include "util/atomic_file.hpp"

namespace coredis::exp {
namespace {

/// The pinned smoke campaign of the acceptance criteria: 4 points x 2
/// repetitions = 8 cells, both fault laws, small enough to simulate in
/// milliseconds per cell.
const char* const kSmokeCampaign = R"(
# pinned smoke grid
n = 6
p = 24
runs = 2
seed = 20260726
mtbf_years = 2, 50
fault_law = exponential, weibull
configs = baseline, ig_local, stf_greedy
)";

std::string read_file(const std::filesystem::path& path) {
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file) << "cannot open " << path;
  std::ostringstream text;
  text << file.rdbuf();
  return text.str();
}

void write_file(const std::filesystem::path& path, const std::string& text) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(file) << "cannot write " << path;
  file << text;
}

std::filesystem::path temp_jsonl(const std::string& tag) {
  return std::filesystem::temp_directory_path() /
         ("coredis_campaign_test_" + tag + ".jsonl");
}

/// Split JSONL content into lines (each line lost its trailing '\n').
std::vector<std::string> lines_of(const std::string& content) {
  std::vector<std::string> lines;
  std::istringstream stream(content);
  std::string line;
  while (std::getline(stream, line)) lines.push_back(line);
  return lines;
}

/// RAII override of COREDIS_THREADS, restoring the previous value (the
/// suite itself may run under an override, e.g. CI's COREDIS_THREADS=2).
class ThreadsEnv {
 public:
  explicit ThreadsEnv(const char* value) {
    const char* previous = std::getenv("COREDIS_THREADS");
    had_previous_ = previous != nullptr;
    if (had_previous_) previous_ = previous;
    if (value == nullptr) {
      ::unsetenv("COREDIS_THREADS");
    } else {
      ::setenv("COREDIS_THREADS", value, 1);
    }
  }
  ~ThreadsEnv() {
    if (had_previous_) {
      ::setenv("COREDIS_THREADS", previous_.c_str(), 1);
    } else {
      ::unsetenv("COREDIS_THREADS");
    }
  }

 private:
  bool had_previous_ = false;
  std::string previous_;
};

void expect_same_stats(const RunningStats& a, const RunningStats& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
}

void expect_same_points(const std::vector<PointResult>& a,
                        const std::vector<PointResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_same_stats(a[i].baseline_makespan, b[i].baseline_makespan);
    ASSERT_EQ(a[i].configs.size(), b[i].configs.size());
    for (std::size_t c = 0; c < a[i].configs.size(); ++c) {
      EXPECT_EQ(a[i].configs[c].name, b[i].configs[c].name);
      expect_same_stats(a[i].configs[c].makespan, b[i].configs[c].makespan);
      expect_same_stats(a[i].configs[c].normalized, b[i].configs[c].normalized);
      expect_same_stats(a[i].configs[c].redistributions,
                        b[i].configs[c].redistributions);
      expect_same_stats(a[i].configs[c].effective_faults,
                        b[i].configs[c].effective_faults);
    }
  }
}

TEST(CampaignFile, ParsesAxesBaseKeysAndConfigs) {
  const Campaign campaign = parse_campaign(kSmokeCampaign);
  EXPECT_EQ(campaign.grid.base.n, 6);
  EXPECT_EQ(campaign.grid.base.p, 24);
  EXPECT_EQ(campaign.grid.base.runs, 2);
  EXPECT_EQ(campaign.grid.base.seed, 20260726u);
  ASSERT_EQ(campaign.grid.points(), 4u);
  EXPECT_EQ(campaign.cells(), 8u);
  ASSERT_EQ(campaign.configs.size(), 3u);
  EXPECT_EQ(campaign.configs[0].name, baseline_no_redistribution().name);
  EXPECT_EQ(campaign.configs[1].name, ig_end_local().name);
  EXPECT_EQ(campaign.configs[2].name, stf_end_greedy().name);

  // mtbf_years is the outer axis, fault_law the inner one.
  EXPECT_DOUBLE_EQ(campaign.grid.point(0).mtbf_years, 2.0);
  EXPECT_EQ(campaign.grid.point(0).fault_law, FaultLaw::Exponential);
  EXPECT_DOUBLE_EQ(campaign.grid.point(1).mtbf_years, 2.0);
  EXPECT_EQ(campaign.grid.point(1).fault_law, FaultLaw::Weibull);
  EXPECT_DOUBLE_EQ(campaign.grid.point(2).mtbf_years, 50.0);
  EXPECT_EQ(campaign.grid.point(2).fault_law, FaultLaw::Exponential);
  EXPECT_DOUBLE_EQ(campaign.grid.point(3).mtbf_years, 50.0);
  EXPECT_EQ(campaign.grid.point(3).fault_law, FaultLaw::Weibull);
  EXPECT_EQ(campaign.grid.point_label(3), "mtbf_years=50 fault_law=weibull");
  // Every point inherits the base knobs.
  EXPECT_EQ(campaign.grid.point(3).n, 6);
  EXPECT_EQ(campaign.grid.point(3).seed, 20260726u);
}

TEST(CampaignFile, NamedConfigSetsAndDefault) {
  EXPECT_EQ(parse_campaign("n = 4\np = 8\n").configs.size(),
            paper_curves().size());
  EXPECT_EQ(parse_campaign("n = 4\np = 8\nconfigs = fault_free\n")
                .configs.size(),
            fault_free_curves().size());
  EXPECT_EQ(parse_campaign("n = 4\np = 8\nconfigs = paper\n").configs.size(),
            paper_curves().size());
}

TEST(CampaignFile, ScalarAssignmentOverridesAnEarlierSweep) {
  const Campaign campaign =
      parse_campaign("n = 4\np = 20\nmtbf_years = 1, 2, 3\nmtbf_years = 7\n");
  EXPECT_EQ(campaign.grid.points(), 1u);
  EXPECT_DOUBLE_EQ(campaign.grid.point(0).mtbf_years, 7.0);
}

TEST(CampaignFile, ErrorsNameTheOffendingLine) {
  // Line 3 holds the typo.
  try {
    (void)parse_campaign("n = 4\np = 20\ntypo_key = 3\n");
    FAIL() << "must throw";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("campaign line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("typo_key"), std::string::npos) << what;
  }
  // Sweeping a non-axis key names the line and the axis list.
  try {
    (void)parse_campaign("n = 4\np = 20\nruns = 1, 2\n");
    FAIL() << "must throw";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("campaign line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("cannot be swept"), std::string::npos) << what;
  }
  // Malformed axis elements and unknown configurations, with line context.
  try {
    (void)parse_campaign("mtbf_years = 5, abc\n");
    FAIL() << "must throw";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("campaign line 1"),
              std::string::npos)
        << error.what();
  }
  // A swept key that does not exist at all reads as a typo, not as a
  // non-sweepable key.
  try {
    (void)parse_campaign("mtbf_yeras = 5, 25\n");
    FAIL() << "must throw";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("unknown key 'mtbf_yeras'"),
              std::string::npos)
        << error.what();
  }
  EXPECT_THROW((void)parse_campaign("configs = paper, nonsense\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_campaign("mtbf_years = 5,, 10\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_campaign("no equals sign\n"), std::runtime_error);
}

TEST(CampaignFile, ValidatesEveryGridPoint) {
  // n = 40 with p = 20 violates p >= 2n on the second point only.
  try {
    (void)parse_campaign("n = 5, 40\np = 20\n");
    FAIL() << "must throw";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("n=40"), std::string::npos) << what;
    EXPECT_NE(what.find("p >= 2n"), std::string::npos) << what;
  }
}

TEST(CampaignGrid, PointLabelFallsBackToBase) {
  const Campaign campaign = parse_campaign("n = 4\np = 8\n");
  EXPECT_EQ(campaign.grid.points(), 1u);
  EXPECT_EQ(campaign.grid.point_label(0), "base");
}

TEST(CampaignRun, GridAggregatesMatchRunPointPerPoint) {
  const Campaign campaign = parse_campaign(kSmokeCampaign);
  const std::vector<PointResult> grid = run_campaign(campaign);

  std::vector<PointResult> sequential;
  for (std::size_t i = 0; i < campaign.grid.points(); ++i)
    sequential.push_back(run_point(campaign.grid.point(i), campaign.configs));
  expect_same_points(grid, sequential);

  // The baseline configuration reuses the normalizer simulation but must
  // keep its full counters: at MTBF = 2y the no-RC run does see faults.
  EXPECT_GT(grid[0].configs[0].effective_faults.mean(), 0.0);
  EXPECT_EQ(grid[0].configs[0].makespan.mean(),
            grid[0].baseline_makespan.mean());
}

TEST(CampaignRun, JsonlIsByteIdenticalAcrossThreadCounts) {
  const Campaign campaign = parse_campaign(kSmokeCampaign);
  std::string reference;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const auto path = temp_jsonl("threads" + std::to_string(threads));
    std::filesystem::remove(path);
    GridRunOptions options;
    options.jsonl_path = path.string();
    options.threads = threads;
    (void)run_campaign(campaign, options);
    const std::string content = read_file(path);
    if (reference.empty()) {
      reference = content;
      // Header + one record per cell.
      EXPECT_EQ(lines_of(content).size(), 1u + campaign.cells());
      EXPECT_NE(content.find("\"coredis_campaign\":1"), std::string::npos);
    } else {
      EXPECT_EQ(content, reference)
          << "JSONL differs at " << threads << " threads";
    }
    std::filesystem::remove(path);
  }
  // The COREDIS_THREADS environment override goes through the same path.
  const ThreadsEnv env("3");
  const auto path = temp_jsonl("threads_env");
  std::filesystem::remove(path);
  GridRunOptions options;
  options.jsonl_path = path.string();
  (void)run_campaign(campaign, options);
  EXPECT_EQ(read_file(path), reference);
  std::filesystem::remove(path);
}

TEST(CampaignRun, RunPointOutcomeIndependentOfThreadCount) {
  Scenario scenario;
  scenario.n = 6;
  scenario.p = 24;
  scenario.runs = 5;
  scenario.mtbf_years = 2.0;
  scenario.seed = 99;
  std::vector<PointResult> results;
  for (const char* threads : {"1", "8"}) {
    const ThreadsEnv env(threads);
    results.push_back(run_point(scenario, paper_curves()));
  }
  expect_same_points({results[0]}, {results[1]});
}

TEST(CampaignResume, TruncatedFileResumesToIdenticalBytes) {
  const Campaign campaign = parse_campaign(kSmokeCampaign);
  const auto full_path = temp_jsonl("resume_full");
  std::filesystem::remove(full_path);
  GridRunOptions options;
  options.jsonl_path = full_path.string();
  options.threads = 2;
  const std::vector<PointResult> uninterrupted =
      run_campaign(campaign, options);
  const std::string full = read_file(full_path);
  const std::vector<std::string> lines = lines_of(full);
  ASSERT_EQ(lines.size(), 1u + campaign.cells());

  // Interrupt mid-grid: keep the header and the first 3 cells.
  for (const std::size_t keep : {0u, 1u, 3u, 7u}) {
    const auto path = temp_jsonl("resume_keep" + std::to_string(keep));
    std::string prefix = lines[0] + '\n';
    for (std::size_t k = 0; k < keep; ++k) prefix += lines[1 + k] + '\n';
    write_file(path, prefix);

    GridRunOptions resume = options;
    resume.jsonl_path = path.string();
    resume.resume = true;
    const std::vector<PointResult> resumed = run_campaign(campaign, resume);
    EXPECT_EQ(read_file(path), full) << "resume after " << keep << " cells";
    expect_same_points(resumed, uninterrupted);
    std::filesystem::remove(path);
  }
  std::filesystem::remove(full_path);
}

TEST(CampaignResume, CorruptedLastLineIsDroppedAndRecomputed) {
  const Campaign campaign = parse_campaign(kSmokeCampaign);
  const auto full_path = temp_jsonl("corrupt_full");
  std::filesystem::remove(full_path);
  GridRunOptions options;
  options.jsonl_path = full_path.string();
  options.threads = 2;
  (void)run_campaign(campaign, options);
  const std::string full = read_file(full_path);
  const std::vector<std::string> lines = lines_of(full);

  // A record torn mid-write: half of cell 2, no trailing newline.
  {
    const auto path = temp_jsonl("corrupt_torn");
    const std::string torn =
        lines[0] + '\n' + lines[1] + '\n' + lines[2] + '\n' +
        lines[3].substr(0, lines[3].size() / 2);
    write_file(path, torn);
    GridRunOptions resume = options;
    resume.jsonl_path = path.string();
    resume.resume = true;
    (void)run_campaign(campaign, resume);
    EXPECT_EQ(read_file(path), full);
    std::filesystem::remove(path);
  }
  // A complete but mangled last line is dropped the same way.
  {
    const auto path = temp_jsonl("corrupt_mangled");
    write_file(path, lines[0] + '\n' + lines[1] + '\n' + "{\"cell\":1,garbage\n");
    GridRunOptions resume = options;
    resume.jsonl_path = path.string();
    resume.resume = true;
    (void)run_campaign(campaign, resume);
    EXPECT_EQ(read_file(path), full);
    std::filesystem::remove(path);
  }
  // Corruption that is not the tail cannot be repaired silently.
  {
    const auto path = temp_jsonl("corrupt_midfile");
    write_file(path,
               lines[0] + '\n' + "{\"cell\":0,garbage\n" + lines[2] + '\n');
    GridRunOptions resume = options;
    resume.jsonl_path = path.string();
    resume.resume = true;
    EXPECT_THROW((void)run_campaign(campaign, resume), std::runtime_error);
    std::filesystem::remove(path);
  }
  std::filesystem::remove(full_path);
}

TEST(CampaignResume, MismatchedCampaignIsRefused) {
  const Campaign campaign = parse_campaign(kSmokeCampaign);
  const auto path = temp_jsonl("fingerprint");
  std::filesystem::remove(path);
  GridRunOptions options;
  options.jsonl_path = path.string();
  (void)run_campaign(campaign, options);

  Campaign other = campaign;
  other.grid.base.seed = 7;  // different campaign, same grid shape
  GridRunOptions resume = options;
  resume.resume = true;
  EXPECT_THROW((void)run_campaign(other, resume), std::runtime_error);
  EXPECT_THROW((void)summarize_jsonl(other, path.string()),
               std::runtime_error);
  std::filesystem::remove(path);
}

/// The online-arrival workload campaign of the acceptance criteria:
/// Poisson arrivals swept over two loads x 2 repetitions, the three
/// online schedulers (malleable / EASY / FCFS).
const char* const kOnlineCampaign = R"(
n = 6
p = 24
runs = 2
seed = 20260726
mtbf_years = 5
arrival_law = poisson
load_factor = 0.5, 4
configs = online
)";

TEST(CampaignOnline, ParsesArrivalAxesAndOnlineConfigs) {
  const Campaign campaign = parse_campaign(kOnlineCampaign);
  ASSERT_EQ(campaign.grid.points(), 2u);
  EXPECT_EQ(campaign.cells(), 4u);
  ASSERT_EQ(campaign.configs.size(), 3u);
  EXPECT_EQ(campaign.configs[0].name, online_malleable().name);
  EXPECT_EQ(campaign.configs[0].scheduler, SchedulerKind::OnlineMalleable);
  EXPECT_EQ(campaign.configs[1].scheduler, SchedulerKind::BatchEasy);
  EXPECT_EQ(campaign.configs[2].scheduler, SchedulerKind::BatchFcfs);
  EXPECT_EQ(campaign.grid.point(0).arrival_law,
            extensions::ArrivalLaw::Poisson);
  EXPECT_DOUBLE_EQ(campaign.grid.point(0).load_factor, 0.5);
  EXPECT_DOUBLE_EQ(campaign.grid.point(1).load_factor, 4.0);
  EXPECT_EQ(campaign.grid.point_label(1), "load_factor=4");
  // Both arrival axes sweep together when listed.
  const Campaign both = parse_campaign(
      "n = 4\np = 8\narrival_law = none, poisson\nload_factor = 1, 2\n");
  EXPECT_EQ(both.grid.points(), 4u);
  EXPECT_EQ(both.grid.point_label(3), "arrival_law=poisson load_factor=2");
}

TEST(CampaignOnline, JsonlIsByteIdenticalAcrossThreadCounts) {
  const Campaign campaign = parse_campaign(kOnlineCampaign);
  std::string reference;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const auto path = temp_jsonl("online_threads" + std::to_string(threads));
    std::filesystem::remove(path);
    GridRunOptions options;
    options.jsonl_path = path.string();
    options.threads = threads;
    (void)run_campaign(campaign, options);
    const std::string content = read_file(path);
    if (reference.empty()) {
      reference = content;
      EXPECT_EQ(lines_of(content).size(), 1u + campaign.cells());
    } else {
      EXPECT_EQ(content, reference)
          << "online JSONL differs at " << threads << " threads";
    }
    std::filesystem::remove(path);
  }
  // The COREDIS_THREADS override goes through the same path.
  const ThreadsEnv env("3");
  const auto path = temp_jsonl("online_threads_env");
  std::filesystem::remove(path);
  GridRunOptions options;
  options.jsonl_path = path.string();
  (void)run_campaign(campaign, options);
  EXPECT_EQ(read_file(path), reference);
  std::filesystem::remove(path);
}

TEST(CampaignOnline, InterruptResumeReproducesIdenticalBytes) {
  const Campaign campaign = parse_campaign(kOnlineCampaign);
  const auto full_path = temp_jsonl("online_resume_full");
  std::filesystem::remove(full_path);
  GridRunOptions options;
  options.jsonl_path = full_path.string();
  options.threads = 2;
  const std::vector<PointResult> uninterrupted =
      run_campaign(campaign, options);
  const std::string full = read_file(full_path);
  const std::vector<std::string> lines = lines_of(full);
  ASSERT_EQ(lines.size(), 1u + campaign.cells());

  for (const std::size_t keep : {0u, 1u, 3u}) {
    const auto path = temp_jsonl("online_resume_keep" + std::to_string(keep));
    std::string prefix = lines[0] + '\n';
    for (std::size_t k = 0; k < keep; ++k) prefix += lines[1 + k] + '\n';
    // Torn tail: half of the next record, no trailing newline.
    prefix += lines[1 + keep].substr(0, lines[1 + keep].size() / 2);
    write_file(path, prefix);

    GridRunOptions resume = options;
    resume.jsonl_path = path.string();
    resume.resume = true;
    const std::vector<PointResult> resumed = run_campaign(campaign, resume);
    EXPECT_EQ(read_file(path), full) << "resume after " << keep << " cells";
    expect_same_points(resumed, uninterrupted);
    std::filesystem::remove(path);
  }
  std::filesystem::remove(full_path);
}

TEST(CampaignOnline, OnlineCellsRewardMalleabilityAtHighLoad) {
  // Sanity on the simulated content (not just the plumbing): at load 4
  // the malleable scheduler must beat both rigid baselines on mean
  // normalized makespan, and the EASY/FCFS pair must not beat it.
  const Campaign campaign = parse_campaign(kOnlineCampaign);
  const std::vector<PointResult> points = run_campaign(campaign);
  const PointResult& high = points[1];
  EXPECT_LT(high.configs[0].normalized.mean(),
            high.configs[1].normalized.mean());
  EXPECT_LE(high.configs[1].normalized.mean(),
            high.configs[2].normalized.mean() * (1.0 + 1e-9));
  // Online runs report their redistribution activity through the same
  // counters as the engine.
  EXPECT_GT(high.configs[0].redistributions.mean(), 0.0);
  EXPECT_EQ(high.configs[1].redistributions.mean(), 0.0);
}

// --- the distributed shard fabric (DESIGN.md section 7.4) -----------------

TEST(CampaignShard, ParsesSpecsAndRejectsMalformedOnes) {
  EXPECT_EQ(parse_shard_spec("1/4").index, 1u);
  EXPECT_EQ(parse_shard_spec("1/4").count, 4u);
  EXPECT_EQ(parse_shard_spec("0/1").count, 1u);
  for (const char* bad : {"4/4", "0/0", "x/4", "1-4", "1/4 ", "1/", "/4", ""})
    EXPECT_THROW((void)parse_shard_spec(bad), std::runtime_error) << bad;
}

TEST(CampaignShard, RangesTileTheCellSpaceInBalance) {
  for (const std::size_t total : {0u, 1u, 7u, 8u, 23u}) {
    for (const std::size_t workers : {1u, 2u, 3u, 5u, 9u}) {
      std::size_t expected_begin = 0;
      std::size_t min_size = total + 1;
      std::size_t max_size = 0;
      for (std::size_t k = 0; k < workers; ++k) {
        const auto [begin, end] = shard_range(total, {k, workers});
        EXPECT_EQ(begin, expected_begin)
            << "shard " << k << "/" << workers << " over " << total;
        EXPECT_LE(begin, end);
        expected_begin = end;
        min_size = std::min(min_size, end - begin);
        max_size = std::max(max_size, end - begin);
      }
      EXPECT_EQ(expected_begin, total);
      EXPECT_LE(max_size - min_size, 1u);
    }
  }
}

TEST(CampaignShard, ShardPathSplicesBeforeTheExtension) {
  EXPECT_EQ(shard_path("out.jsonl", {0, 4}), "out.shard0of4.jsonl");
  EXPECT_EQ(shard_path("noext", {1, 2}), "noext.shard1of2");
  const std::filesystem::path nested =
      std::filesystem::path("dir") / "results.jsonl";
  EXPECT_EQ(shard_path(nested.string(), {2, 3}),
            (std::filesystem::path("dir") / "results.shard2of3.jsonl")
                .string());
}

/// Run every shard of `campaign` for `workers` workers into the shard
/// files of `out`, then merge into `out`.
void run_all_shards_and_merge(const Campaign& campaign, std::size_t workers,
                              const std::string& out) {
  for (std::size_t k = 0; k < workers; ++k) {
    GridRunOptions options;
    options.jsonl_path = out;
    options.threads = 2;
    run_campaign_shard(campaign, {k, workers}, options);
  }
  merge_campaign_shards(campaign, workers, out);
}

void remove_shard_files(const std::string& out, std::size_t workers) {
  for (std::size_t k = 0; k < workers; ++k)
    std::filesystem::remove(shard_path(out, {k, workers}));
}

TEST(CampaignShard, MergedShardsAreByteIdenticalToSingleProcess) {
  const Campaign campaign = parse_campaign(kSmokeCampaign);
  const auto single_path = temp_jsonl("shard_single");
  std::filesystem::remove(single_path);
  GridRunOptions options;
  options.jsonl_path = single_path.string();
  options.threads = 2;
  const std::vector<PointResult> single = run_campaign(campaign, options);
  const std::string reference = read_file(single_path);

  // 16 workers > 8 cells: some shards are legitimately empty.
  for (const std::size_t workers : {1u, 2u, 3u, 8u, 16u}) {
    const auto path = temp_jsonl("shard_w" + std::to_string(workers));
    std::filesystem::remove(path);
    run_all_shards_and_merge(campaign, workers, path.string());
    EXPECT_EQ(read_file(path), reference) << workers << " workers";
    // The merged artifact summarizes exactly like the single-process one.
    expect_same_points(summarize_jsonl(campaign, path.string()), single);
    remove_shard_files(path.string(), workers);
    std::filesystem::remove(path);
  }
  std::filesystem::remove(single_path);
}

TEST(CampaignShard, TornShardResumesToAnIdenticalMerge) {
  const Campaign campaign = parse_campaign(kSmokeCampaign);
  const auto single_path = temp_jsonl("shard_torn_single");
  std::filesystem::remove(single_path);
  GridRunOptions options;
  options.jsonl_path = single_path.string();
  options.threads = 2;
  (void)run_campaign(campaign, options);

  const auto out = temp_jsonl("shard_torn");
  std::filesystem::remove(out);
  GridRunOptions shard_options;
  shard_options.jsonl_path = out.string();
  shard_options.threads = 2;
  run_campaign_shard(campaign, {0, 2}, shard_options);
  run_campaign_shard(campaign, {1, 2}, shard_options);

  // Kill simulation: shard 0 loses half of its last record (no newline),
  // exactly what a SIGKILL mid-append leaves behind.
  const std::string shard0 = shard_path(out.string(), {0, 2});
  const std::string full_shard = read_file(shard0);
  const std::vector<std::string> lines = lines_of(full_shard);
  std::string torn;
  for (std::size_t i = 0; i + 1 < lines.size(); ++i) torn += lines[i] + '\n';
  torn += lines.back().substr(0, lines.back().size() / 2);
  write_file(shard0, torn);

  // Merging the torn shard refuses loudly and leaves no artifact behind.
  try {
    merge_campaign_shards(campaign, 2, out.string());
    FAIL() << "must refuse a torn shard";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find(shard0), std::string::npos) << what;
    EXPECT_NE(what.find("incomplete"), std::string::npos) << what;
  }
  EXPECT_FALSE(std::filesystem::exists(out));

  // The re-issued worker resumes its own shard file; the merge is then
  // byte-identical to the uninterrupted single-process artifact.
  GridRunOptions resume = shard_options;
  resume.resume = true;
  run_campaign_shard(campaign, {0, 2}, resume);
  EXPECT_EQ(read_file(shard0), full_shard);
  merge_campaign_shards(campaign, 2, out.string());
  EXPECT_EQ(read_file(out), read_file(single_path));

  remove_shard_files(out.string(), 2);
  std::filesystem::remove(out);
  std::filesystem::remove(single_path);
}

TEST(CampaignShard, MergeRefusesMissingMismatchedAndOversizedShards) {
  const Campaign campaign = parse_campaign(kSmokeCampaign);
  const auto out = temp_jsonl("shard_refuse");
  std::filesystem::remove(out);
  GridRunOptions options;
  options.jsonl_path = out.string();
  options.threads = 2;
  run_campaign_shard(campaign, {0, 2}, options);
  const std::string shard0 = shard_path(out.string(), {0, 2});
  const std::string shard1 = shard_path(out.string(), {1, 2});

  // Missing shard 1: the refusal names the missing file.
  try {
    merge_campaign_shards(campaign, 2, out.string());
    FAIL() << "must refuse a missing shard";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find(shard1), std::string::npos)
        << error.what();
  }
  EXPECT_FALSE(std::filesystem::exists(out));

  // A shard of a *different* campaign is a fingerprint mismatch.
  Campaign other = campaign;
  other.grid.base.seed = 7;
  GridRunOptions other_options = options;
  run_campaign_shard(other, {1, 2}, other_options);
  EXPECT_THROW(merge_campaign_shards(campaign, 2, out.string()),
               std::runtime_error);
  EXPECT_FALSE(std::filesystem::exists(out));

  // Trailing data beyond the shard's range refuses too.
  run_campaign_shard(campaign, {1, 2}, options);
  {
    std::ofstream append(shard1, std::ios::binary | std::ios::app);
    append << "{\"cell\":99}\n";
  }
  EXPECT_THROW(merge_campaign_shards(campaign, 2, out.string()),
               std::runtime_error);
  EXPECT_FALSE(std::filesystem::exists(out));

  // Shard files are not campaign files: resuming the final artifact from
  // a shard file (or merging a campaign file as a shard) cannot work.
  GridRunOptions resume = options;
  resume.jsonl_path = shard0;
  resume.resume = true;
  EXPECT_THROW((void)run_campaign(campaign, resume), std::runtime_error);

  remove_shard_files(out.string(), 2);
  std::filesystem::remove(out);
}

TEST(CampaignShard, ShardRunsNeedAnOutputPath) {
  const Campaign campaign = parse_campaign(kSmokeCampaign);
  EXPECT_THROW(run_campaign_shard(campaign, {0, 2}, GridRunOptions{}),
               std::runtime_error);
}

TEST(CampaignShard, FileStorageShardsMergeIdentically) {
  // The whole fabric over the file backend with a 1-byte spill budget:
  // worker RAM is bounded, bytes are not allowed to change.
  const Campaign campaign = parse_campaign(kSmokeCampaign);
  const auto ram_out = temp_jsonl("shard_storage_ram");
  const auto file_out = temp_jsonl("shard_storage_file");
  std::filesystem::remove(ram_out);
  std::filesystem::remove(file_out);
  run_all_shards_and_merge(campaign, 2, ram_out.string());

  for (std::size_t k = 0; k < 2; ++k) {
    GridRunOptions options;
    options.jsonl_path = file_out.string();
    options.threads = 8;
    options.storage = StorageKind::File;
    options.spill_ram_budget_bytes = 1;
    run_campaign_shard(campaign, {k, 2}, options);
  }
  merge_campaign_shards(campaign, 2, file_out.string());
  EXPECT_EQ(read_file(file_out), read_file(ram_out));

  remove_shard_files(ram_out.string(), 2);
  remove_shard_files(file_out.string(), 2);
  std::filesystem::remove(ram_out);
  std::filesystem::remove(file_out);
}

TEST(CampaignMerge, LeavesNoTempSiblingAfterSuccess) {
  const Campaign campaign = parse_campaign(kSmokeCampaign);
  const auto out = temp_jsonl("merge_atomic_clean");
  std::filesystem::remove(out);
  run_all_shards_and_merge(campaign, 2, out.string());
  EXPECT_TRUE(std::filesystem::exists(out));
  EXPECT_FALSE(std::filesystem::exists(atomic_temp_path(out.string())));
  remove_shard_files(out.string(), 2);
  std::filesystem::remove(out);
}

TEST(CampaignMerge, FailureTouchesNeitherFinalNorTemp) {
  // A merge that cannot complete (missing shard) must leave the final
  // name absent and clean up its temp sibling: readers of the final path
  // expect complete-or-absent, and a lingering temp would mask the next
  // crash's debris.
  const Campaign campaign = parse_campaign(kSmokeCampaign);
  const auto out = temp_jsonl("merge_atomic_fail");
  std::filesystem::remove(out);
  GridRunOptions options;
  options.jsonl_path = out.string();
  options.threads = 2;
  run_campaign_shard(campaign, {0, 2}, options);  // shard 1 never runs
  EXPECT_THROW(merge_campaign_shards(campaign, 2, out.string()),
               std::runtime_error);
  EXPECT_FALSE(std::filesystem::exists(out));
  EXPECT_FALSE(std::filesystem::exists(atomic_temp_path(out.string())));

  // Supplying the missing shard makes the same merge succeed, and a
  // stale temp sibling (a previous crash's debris) is simply truncated.
  write_file(atomic_temp_path(out.string()), "stale debris\n");
  run_campaign_shard(campaign, {1, 2}, options);
  merge_campaign_shards(campaign, 2, out.string());
  EXPECT_FALSE(std::filesystem::exists(atomic_temp_path(out.string())));

  // The recovered artifact is byte-identical to a clean single-process run.
  const auto reference = temp_jsonl("merge_atomic_ref");
  std::filesystem::remove(reference);
  GridRunOptions single;
  single.jsonl_path = reference.string();
  single.threads = 2;
  (void)run_campaign(campaign, single);
  EXPECT_EQ(read_file(out), read_file(reference));

  remove_shard_files(out.string(), 2);
  std::filesystem::remove(out);
  std::filesystem::remove(reference);
}

TEST(CampaignSummarize, MatchesTheRunThatProducedTheFile) {
  const Campaign campaign = parse_campaign(kSmokeCampaign);
  const auto path = temp_jsonl("summarize");
  std::filesystem::remove(path);
  GridRunOptions options;
  options.jsonl_path = path.string();
  const std::vector<PointResult> ran = run_campaign(campaign, options);

  JsonlCoverage coverage;
  const std::vector<PointResult> summarized =
      summarize_jsonl(campaign, path.string(), &coverage);
  EXPECT_EQ(coverage.cells_present, campaign.cells());
  EXPECT_EQ(coverage.cells_total, campaign.cells());
  EXPECT_FALSE(coverage.dropped_corrupt_tail);
  expect_same_points(summarized, ran);

  // A partial file reports partial coverage and aggregates the prefix.
  const std::vector<std::string> lines = lines_of(read_file(path));
  write_file(path, lines[0] + '\n' + lines[1] + '\n' + lines[2] + '\n');
  const std::vector<PointResult> partial =
      summarize_jsonl(campaign, path.string(), &coverage);
  EXPECT_EQ(coverage.cells_present, 2u);
  EXPECT_EQ(partial[0].baseline_makespan.count(), 2u);
  EXPECT_EQ(partial[2].baseline_makespan.count(), 0u);
  const std::string table = render_campaign_table(campaign, partial);
  EXPECT_NE(table.find("mtbf_years=2 fault_law=exponential"),
            std::string::npos);
  EXPECT_NE(table.find('-'), std::string::npos);
  std::filesystem::remove(path);
}

// --- scheduling knobs: pure scheduling, zero output bytes -----------------

TEST(CampaignSchedule, EveryScheduleOrderAndThreadCountSameBytes) {
  const Campaign campaign = parse_campaign(kSmokeCampaign);
  std::string reference;
  const auto check = [&](const std::string& tag, Schedule schedule,
                         CellOrder order) {
    const auto path = temp_jsonl("schedule_" + tag);
    std::filesystem::remove(path);
    GridRunOptions options;
    options.jsonl_path = path.string();
    options.schedule = schedule;
    options.order = order;
    (void)run_campaign(campaign, options);
    const std::string content = read_file(path);
    if (reference.empty()) {
      reference = content;
    } else {
      EXPECT_EQ(content, reference) << tag;
    }
    std::filesystem::remove(path);
  };
  // The acceptance matrix: the stealing schedule across COREDIS_THREADS
  // 1, 2 and 8, both cell orders...
  for (const char* threads : {"1", "2", "8"}) {
    const ThreadsEnv env(threads);
    check(std::string("steal_t") + threads, Schedule::Stealing,
          CellOrder::CostLpt);
    check(std::string("steal_index_t") + threads, Schedule::Stealing,
          CellOrder::Index);
  }
  // ...and every other schedule x order combination at a fixed count.
  const ThreadsEnv env("3");
  for (const Schedule schedule :
       {Schedule::Dynamic, Schedule::Static, Schedule::Stealing})
    for (const CellOrder order : {CellOrder::Index, CellOrder::CostLpt})
      check("grid" + std::to_string(static_cast<int>(schedule)) +
                std::to_string(static_cast<int>(order)),
            schedule, order);
}

// --- dynamic dealing ------------------------------------------------------

std::vector<std::size_t> campaign_runs(const std::vector<Scenario>& points) {
  std::vector<std::size_t> runs;
  for (const Scenario& point : points)
    runs.push_back(static_cast<std::size_t>(point.runs));
  return runs;
}

void remove_deal_files(const std::string& out, std::size_t workers) {
  for (std::size_t k = 0; k < workers; ++k)
    std::filesystem::remove(shard_path(out, {k, workers}));
}

TEST(CampaignDeal, PlanTilesTheCellSpaceLongestFirst) {
  // Heterogeneous grid: the n=24 point's cells are predicted well above
  // the n=6 point's.
  const Campaign campaign =
      parse_campaign("n = 6, 24\np = 48\nruns = 4\nconfigs = baseline\n");
  const std::vector<Scenario> points = campaign_points(campaign);
  const std::unique_ptr<CellQueue> queue =
      make_cell_queue(StorageKind::Ram, campaign_runs(points));
  const CostModel model(points, campaign.configs);
  for (const std::size_t workers : {1u, 2u, 5u}) {
    std::vector<DealBlock> blocks = plan_deal_blocks(model, *queue, workers);
    ASSERT_FALSE(blocks.empty());
    // The first block dealt is (one of) the predicted-longest.
    const auto block_cost = [&](const DealBlock& block) {
      double cost = 0.0;
      for (std::size_t k = block.begin; k < block.end; ++k)
        cost += model.predict(queue->at(k).point);
      return cost;
    };
    for (std::size_t i = 1; i < blocks.size(); ++i)
      EXPECT_GE(block_cost(blocks[0]), block_cost(blocks[i])) << i;
    // Sorted by begin, the blocks tile [0, cells) exactly.
    std::sort(blocks.begin(), blocks.end(),
              [](const DealBlock& a, const DealBlock& b) {
                return a.begin < b.begin;
              });
    std::size_t next = 0;
    for (const DealBlock& block : blocks) {
      EXPECT_EQ(block.begin, next);
      EXPECT_LT(block.begin, block.end);
      next = block.end;
    }
    EXPECT_EQ(next, queue->size());
  }
}

TEST(CampaignDeal, DealtBlocksMergeByteIdenticalToSingleProcess) {
  const Campaign campaign = parse_campaign(kSmokeCampaign);
  const std::vector<Scenario> points = campaign_points(campaign);
  const auto single_path = temp_jsonl("deal_single");
  std::filesystem::remove(single_path);
  GridRunOptions options;
  options.jsonl_path = single_path.string();
  const std::vector<PointResult> single = run_campaign(campaign, options);
  const std::string reference = read_file(single_path);

  const auto out = temp_jsonl("deal_merge");
  std::filesystem::remove(out);
  GridRunOptions worker_options;
  worker_options.jsonl_path = out.string();
  {
    // Two workers, blocks dealt out of cell order — completion order in
    // each shard file differs from cell order, the merge restores it.
    DealWorker w0(points, campaign.configs, 0, 2, worker_options);
    DealWorker w1(points, campaign.configs, 1, 2, worker_options);
    w0.run_block(6, 8);
    w1.run_block(2, 6);
    w0.run_block(0, 2);
  }
  merge_deal_shards(points, campaign.configs, 2, out.string());
  EXPECT_EQ(read_file(out), reference);
  expect_same_points(summarize_jsonl(campaign, out.string()), single);
  remove_deal_files(out.string(), 2);
  std::filesystem::remove(out);
  std::filesystem::remove(single_path);
}

TEST(CampaignDeal, RedealtOverlappingBlocksDedupeByteIdentically) {
  const Campaign campaign = parse_campaign(kSmokeCampaign);
  const std::vector<Scenario> points = campaign_points(campaign);
  const auto single_path = temp_jsonl("deal_overlap_single");
  std::filesystem::remove(single_path);
  GridRunOptions options;
  options.jsonl_path = single_path.string();
  (void)run_campaign(campaign, options);
  const std::string reference = read_file(single_path);

  const auto out = temp_jsonl("deal_overlap");
  std::filesystem::remove(out);
  GridRunOptions worker_options;
  worker_options.jsonl_path = out.string();
  {
    // Worker 0 died after flushing [0, 5) but before its ack: the
    // coordinator re-dealt the whole block to worker 1. Cells 3 and 4
    // exist in both files; the duplicates are byte-identical and the
    // merge keeps the first it saw.
    DealWorker w0(points, campaign.configs, 0, 2, worker_options);
    DealWorker w1(points, campaign.configs, 1, 2, worker_options);
    w0.run_block(0, 5);
    w1.run_block(3, 8);
  }
  merge_deal_shards(points, campaign.configs, 2, out.string());
  EXPECT_EQ(read_file(out), reference);
  remove_deal_files(out.string(), 2);
  std::filesystem::remove(out);
  std::filesystem::remove(single_path);
}

TEST(CampaignDeal, TornTailResumesAndRedealCompletesTheMerge) {
  const Campaign campaign = parse_campaign(kSmokeCampaign);
  const std::vector<Scenario> points = campaign_points(campaign);
  const auto single_path = temp_jsonl("deal_torn_single");
  std::filesystem::remove(single_path);
  GridRunOptions options;
  options.jsonl_path = single_path.string();
  (void)run_campaign(campaign, options);
  const std::string reference = read_file(single_path);

  const auto out = temp_jsonl("deal_torn");
  std::filesystem::remove(out);
  GridRunOptions worker_options;
  worker_options.jsonl_path = out.string();
  {
    DealWorker w0(points, campaign.configs, 0, 1, worker_options);
    w0.run_block(0, 8);
  }
  // Tear the file mid-last-record, as a kill mid-write would.
  const std::string shard = shard_path(out.string(), {0, 1});
  const std::string bytes = read_file(shard);
  write_file(shard, bytes.substr(0, bytes.size() - 17));
  {
    // The respawned worker adopts the valid prefix (7 of 8 records) and
    // recomputes the whole re-dealt block; duplicates dedupe in the
    // merge.
    GridRunOptions resume_options = worker_options;
    resume_options.resume = true;
    DealWorker again(points, campaign.configs, 0, 1, resume_options);
    EXPECT_EQ(again.resumed_records(), 7u);
    again.run_block(0, 8);
  }
  merge_deal_shards(points, campaign.configs, 1, out.string());
  EXPECT_EQ(read_file(out), reference);
  remove_deal_files(out.string(), 1);
  std::filesystem::remove(out);
  std::filesystem::remove(single_path);
}

TEST(CampaignDeal, MergeRefusesGapsAndMixedModes) {
  const Campaign campaign = parse_campaign(kSmokeCampaign);
  const std::vector<Scenario> points = campaign_points(campaign);
  const auto out = temp_jsonl("deal_refuse");
  std::filesystem::remove(out);
  GridRunOptions worker_options;
  worker_options.jsonl_path = out.string();
  {
    DealWorker w0(points, campaign.configs, 0, 2, worker_options);
    DealWorker w1(points, campaign.configs, 1, 2, worker_options);
    w0.run_block(0, 3);
    w1.run_block(5, 8);  // cells 3 and 4 never dealt
  }
  try {
    merge_deal_shards(points, campaign.configs, 2, out.string());
    FAIL() << "must refuse an incomplete deal";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("incomplete"), std::string::npos) << what;
    EXPECT_NE(what.find("cell 3"), std::string::npos) << what;
    EXPECT_NE(what.find("--resume"), std::string::npos) << what;
  }
  EXPECT_FALSE(std::filesystem::exists(out));

  // A static shard mixed into a deal merge is refused naming its mode —
  // and vice versa.
  GridRunOptions static_options;
  static_options.jsonl_path = out.string();
  run_shard(points, campaign.configs, {1, 2}, static_options);
  try {
    merge_deal_shards(points, campaign.configs, 2, out.string());
    FAIL() << "must refuse a static shard in a deal merge";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("static-shard header"),
              std::string::npos)
        << error.what();
  }
  EXPECT_EQ(detect_shard_mode(shard_path(out.string(), {0, 2})),
            ShardMode::Deal);
  EXPECT_EQ(detect_shard_mode(shard_path(out.string(), {1, 2})),
            ShardMode::Static);
  try {
    merge_shards(points, campaign.configs, 2, out.string());
    FAIL() << "must refuse a deal shard in a static merge";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("deal-mode header"),
              std::string::npos)
        << error.what();
  }
  remove_deal_files(out.string(), 2);
  std::filesystem::remove(out);
}

}  // namespace
}  // namespace coredis::exp
