/// Serving subsystem tests (src/serve/): workspace purity (warm ==
/// cold == run_cell), the LRU workspace pool (hits, evictions, tenant
/// isolation, leased entries surviving eviction, same-key overflow),
/// the wire protocol (parse/render, errors naming fields), the batching
/// determinism contract (batched == sequential byte-identity, under
/// concurrency), and — on POSIX — an end-to-end server over a temp
/// socket including graceful shutdown and socket unlink.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <string>
#include <thread>
#include <vector>

#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/scenario_file.hpp"
#include "serve/pool.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define COREDIS_SERVE_TEST_POSIX 1
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace coredis::serve {
namespace {

exp::Scenario small_scenario(int n = 6, int p = 24, double mtbf_years = 5.0) {
  exp::Scenario scenario;
  scenario.n = n;
  scenario.p = p;
  scenario.mtbf_years = mtbf_years;
  scenario.runs = 2;
  return scenario;
}

std::string response_of(Service& service, const Request& request) {
  return service.execute(request);
}

Request make_request(std::uint64_t id, const exp::Scenario& scenario,
                     std::uint64_t rep, const std::string& configs,
                     const std::string& tenant = "default") {
  Request request;
  request.id = id;
  request.op = Op::WhatIf;
  request.tenant = tenant;
  request.scenario = scenario;
  request.scenario_text = exp::format_scenario(scenario);
  request.configs = exp::parse_config_set(configs);
  request.rep = rep;
  return request;
}

// ---------------------------------------------------------------------------
// CellWorkspace purity
// ---------------------------------------------------------------------------

TEST(CellWorkspace, WarmEqualsColdEqualsRunCell) {
  const exp::Scenario scenario = small_scenario();
  const std::vector<exp::ConfigSpec> configs = exp::parse_config_set("paper");

  const exp::CellResult reference = exp::run_cell(scenario, configs, 1);

  exp::CellWorkspace workspace(scenario, 1);
  const exp::CellResult cold = workspace.evaluate(configs);
  // Warm re-evaluation, including after answering different questions in
  // between: all cached state is a pure function of (scenario, rep).
  (void)workspace.evaluate(exp::parse_config_set("stf_greedy"));
  const exp::CellResult warm = workspace.evaluate(configs);

  ASSERT_EQ(reference.results.size(), cold.results.size());
  ASSERT_EQ(reference.results.size(), warm.results.size());
  EXPECT_EQ(reference.baseline, cold.baseline);
  EXPECT_EQ(reference.baseline, warm.baseline);
  for (std::size_t i = 0; i < reference.results.size(); ++i) {
    EXPECT_EQ(reference.results[i].makespan, cold.results[i].makespan);
    EXPECT_EQ(reference.results[i].makespan, warm.results[i].makespan);
    EXPECT_EQ(reference.results[i].redistributions,
              warm.results[i].redistributions);
    EXPECT_EQ(reference.results[i].faults_effective,
              warm.results[i].faults_effective);
  }
}

// ---------------------------------------------------------------------------
// Workspace pool
// ---------------------------------------------------------------------------

TEST(WorkspacePool, HitsAndMisses) {
  WorkspacePool pool(4);
  const exp::Scenario scenario = small_scenario();
  {
    auto lease = pool.checkout("a", scenario, 0);
    EXPECT_FALSE(lease.warm());
  }
  {
    auto lease = pool.checkout("a", scenario, 0);
    EXPECT_TRUE(lease.warm());
  }
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.resident, 1u);
}

TEST(WorkspacePool, TenantIsolation) {
  WorkspacePool pool(4);
  const exp::Scenario scenario = small_scenario();
  (void)pool.checkout("tenant_a", scenario, 0);
  // Identical scenario and rep, different tenant: must be a miss.
  auto lease = pool.checkout("tenant_b", scenario, 0);
  EXPECT_FALSE(lease.warm());
  EXPECT_EQ(pool.stats().misses, 2u);
  EXPECT_EQ(pool.stats().hits, 0u);
}

TEST(WorkspacePool, LruEviction) {
  WorkspacePool pool(2);
  (void)pool.checkout("a", small_scenario(6, 24), 0);
  (void)pool.checkout("a", small_scenario(6, 24), 1);
  (void)pool.checkout("a", small_scenario(6, 24), 2);  // evicts rep 0
  EXPECT_EQ(pool.stats().evictions, 1u);
  EXPECT_EQ(pool.stats().resident, 2u);
  {
    auto lease = pool.checkout("a", small_scenario(6, 24), 0);
    EXPECT_FALSE(lease.warm()) << "the LRU entry must have been evicted";
  }
  {
    auto lease = pool.checkout("a", small_scenario(6, 24), 2);
    EXPECT_TRUE(lease.warm()) << "the most-recent entry must have survived";
  }
}

TEST(WorkspacePool, LeasedEntriesSurviveEviction) {
  WorkspacePool pool(1);
  const exp::Scenario scenario = small_scenario();
  auto held = pool.checkout("a", scenario, 0);
  {
    // Over capacity while everything is leased: nothing is evictable and
    // the pool transiently holds more than its capacity.
    auto second = pool.checkout("a", scenario, 1);
    EXPECT_EQ(pool.stats().resident, 2u);
    EXPECT_EQ(pool.stats().evictions, 0u);
  }
  // rep 1's release shrinks the pool back: the *leased* rep 0 survives,
  // the freshly-released rep 1 is the only eviction candidate.
  EXPECT_EQ(pool.stats().resident, 1u);
  EXPECT_EQ(pool.stats().evictions, 1u);
}

TEST(WorkspacePool, SameKeyCollisionOverflows) {
  WorkspacePool pool(4);
  const exp::Scenario scenario = small_scenario();
  auto first = pool.checkout("a", scenario, 0);
  auto second = pool.checkout("a", scenario, 0);  // same key, still leased
  EXPECT_EQ(pool.stats().overflows, 1u);
  // Both leases answer bit-identically (purity).
  const std::vector<exp::ConfigSpec> configs =
      exp::parse_config_set("ig_local");
  const exp::CellResult a = first.workspace().evaluate(configs);
  const exp::CellResult b = second.workspace().evaluate(configs);
  EXPECT_EQ(a.baseline, b.baseline);
  EXPECT_EQ(a.results[0].makespan, b.results[0].makespan);
}

// ---------------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------------

TEST(Protocol, ParsesWhatIfRequest) {
  Request request;
  std::string error;
  ASSERT_TRUE(parse_request(
      R"({"id":7,"op":"what_if","tenant":"acme","scenario":)"
      R"("n = 6; p = 24; mtbf_years = 5","configs":"ig_local","rep":3})",
      request, error))
      << error;
  EXPECT_EQ(request.id, 7u);
  EXPECT_EQ(request.op, Op::WhatIf);
  EXPECT_EQ(request.tenant, "acme");
  EXPECT_EQ(request.scenario.n, 6);
  EXPECT_EQ(request.scenario.p, 24);
  EXPECT_EQ(request.rep, 3u);
  ASSERT_EQ(request.configs.size(), 1u);
  EXPECT_EQ(request.configs[0].name, "IteratedGreedy-EndLocal");
  EXPECT_EQ(request.scenario_text, exp::format_scenario(request.scenario));
}

TEST(Protocol, PolicyFieldSelectsRegistryPolicies) {
  // 'policy' is the registry-string alias of 'configs': same selector
  // grammar, canonical names, SchedulerKind::Registry specs.
  Request request;
  std::string error;
  ASSERT_TRUE(parse_request(
      R"({"id":8,"op":"what_if","scenario":"n = 6; p = 24",)"
      R"json("policy":"bandit(window=5), pack(end=greedy)"})json",
      request, error))
      << error;
  ASSERT_EQ(request.configs.size(), 2u);
  EXPECT_EQ(request.configs[0].name, "bandit(window=5)");
  EXPECT_EQ(request.configs[0].scheduler, exp::SchedulerKind::Registry);
  EXPECT_EQ(request.configs[1].name, "pack(end=greedy)");
}

TEST(Protocol, PolicyAndConfigsTogetherAreRejected) {
  Request request;
  std::string error;
  EXPECT_FALSE(parse_request(
      R"({"id":9,"op":"what_if","scenario":"n = 6",)"
      R"("configs":"paper","policy":"bandit"})",
      request, error));
  EXPECT_NE(error.find("either 'configs' or 'policy'"), std::string::npos)
      << error;
}

TEST(Protocol, UnknownPolicyIsAStructuredErrorNamingTheToken) {
  Request request;
  std::string error;
  EXPECT_FALSE(parse_request(
      R"({"id":10,"op":"what_if","scenario":"n = 6; p = 24",)"
      R"json("policy":"frobnicate(x=1)"})json",
      request, error));
  EXPECT_NE(error.find("unknown policy 'frobnicate'"), std::string::npos)
      << error;
  // ...and so is a known policy with a bad option value.
  EXPECT_FALSE(parse_request(
      R"({"id":11,"op":"what_if","scenario":"n = 6; p = 24",)"
      R"json("policy":"bandit(explore=7)"})json",
      request, error));
  EXPECT_NE(error.find("'explore'"), std::string::npos) << error;
  // The error renders as a well-formed response line (what the server
  // writes back instead of dropping the connection).
  const std::string response = error_response(request.id, error);
  EXPECT_EQ(response.find("{\"id\":11,\"ok\":false,\"error\":\""), 0u);
}

TEST(Protocol, WhitespaceTolerantAndOrderFree) {
  Request request;
  std::string error;
  ASSERT_TRUE(parse_request(
      "  { \"scenario\" : \"n = 6; p = 24\" , \"op\" : \"what_if\", "
      "\"id\" : 2 }  ",
      request, error))
      << error;
  EXPECT_EQ(request.id, 2u);
  EXPECT_FALSE(request.configs.empty()) << "configs defaults to 'paper'";
}

TEST(Protocol, ErrorsNameTheProblem) {
  Request request;
  std::string error;

  EXPECT_FALSE(parse_request("not json", request, error));
  EXPECT_NE(error.find("JSON object"), std::string::npos) << error;

  EXPECT_FALSE(parse_request(R"({"id":1,"op":"frobnicate"})", request, error));
  EXPECT_NE(error.find("frobnicate"), std::string::npos) << error;

  EXPECT_FALSE(parse_request(R"({"id":1,"bogus":3})", request, error));
  EXPECT_NE(error.find("bogus"), std::string::npos) << error;

  EXPECT_FALSE(parse_request(R"({"id":1,"op":"what_if"})", request, error));
  EXPECT_NE(error.find("scenario"), std::string::npos) << error;

  // Scenario errors surface the offending key, exactly like files.
  EXPECT_FALSE(parse_request(
      R"({"id":1,"op":"what_if","scenario":"n = banana"})", request, error));
  EXPECT_NE(error.find("'n'"), std::string::npos) << error;

  EXPECT_FALSE(parse_request(
      R"({"id":1,"op":"what_if","scenario":"n = 6","configs":"nope"})",
      request, error));
  EXPECT_NE(error.find("nope"), std::string::npos) << error;

  // The id scanned before the failure is kept for the error response.
  EXPECT_FALSE(parse_request(R"({"id":42,"op":"what_if","scenario":3})",
                             request, error));
  EXPECT_EQ(request.id, 42u);
}

TEST(Protocol, AdmitDecidesAgainstLimitAndBaseline) {
  Request request;
  std::string error;
  ASSERT_TRUE(parse_request(
      R"({"id":1,"op":"admit","scenario":"n = 6; p = 24","configs":)"
      R"("ig_local","limit_days":365000})",
      request, error))
      << error;
  Service service(4);
  const std::string generous = service.execute(request);
  EXPECT_NE(generous.find("\"admit\":true"), std::string::npos) << generous;
  EXPECT_NE(generous.find("\"criterion\":\"limit_days\""), std::string::npos);

  ASSERT_TRUE(parse_request(
      R"({"id":2,"op":"admit","scenario":"n = 6; p = 24","configs":)"
      R"("ig_local","limit_days":0.000001})",
      request, error))
      << error;
  const std::string strict = service.execute(request);
  EXPECT_NE(strict.find("\"admit\":false"), std::string::npos) << strict;

  // No limit: admit iff normalized <= 1 (against the baseline).
  ASSERT_TRUE(parse_request(
      R"({"id":3,"op":"admit","scenario":"n = 6; p = 24","configs":"baseline"})",
      request, error))
      << error;
  const std::string baseline = service.execute(request);
  EXPECT_NE(baseline.find("\"admit\":true"), std::string::npos) << baseline;
  EXPECT_NE(baseline.find("\"criterion\":\"baseline\""), std::string::npos);
}

TEST(Protocol, ResponsesRoundTripDoublesExactly) {
  const exp::Scenario scenario = small_scenario();
  const Request request = make_request(9, scenario, 0, "ig_local");
  const exp::CellResult cell =
      exp::run_cell(scenario, request.configs, request.rep);
  const std::string response = render_response(request, cell);
  const std::size_t at = response.find("\"baseline_makespan\":");
  ASSERT_NE(at, std::string::npos);
  const double parsed = std::strtod(response.c_str() + at + 20, nullptr);
  EXPECT_EQ(parsed, cell.baseline) << "%.17g must round-trip bit-exactly";
}

// ---------------------------------------------------------------------------
// Batching determinism
// ---------------------------------------------------------------------------

TEST(Service, BatchedEqualsSequentialByteForByte) {
  Service service(8);
  const exp::Scenario a = small_scenario(6, 24, 5.0);
  const exp::Scenario b = small_scenario(8, 32, 3.0);

  // A mix that exercises every grouping dimension: shared keys with
  // overlapping config unions, distinct reps, distinct scenarios,
  // distinct tenants.
  std::vector<Request> requests;
  std::uint64_t id = 0;
  for (const std::string& configs :
       {std::string("paper"), std::string("ig_local"),
        std::string("stf_greedy,stf_local"), std::string("baseline")}) {
    requests.push_back(make_request(id++, a, 0, configs));
    requests.push_back(make_request(id++, a, 1, configs));
    requests.push_back(make_request(id++, b, 0, configs));
    requests.push_back(make_request(id++, a, 0, configs, "other_tenant"));
  }

  // Sequential reference on a fresh service (its own pool), so the
  // comparison also spans warm vs cold workspaces.
  Service reference(8);
  std::vector<std::string> expected;
  expected.reserve(requests.size());
  for (const Request& request : requests)
    expected.push_back(response_of(reference, request));

  const std::vector<std::string> batched = service.execute_batch(requests);
  ASSERT_EQ(batched.size(), expected.size());
  for (std::size_t i = 0; i < requests.size(); ++i)
    EXPECT_EQ(batched[i], expected[i]) << "request " << i;

  // And again over the warm pool — batch composition and cache warmth
  // must both be invisible.
  const std::vector<std::string> rebatched = service.execute_batch(requests);
  for (std::size_t i = 0; i < requests.size(); ++i)
    EXPECT_EQ(rebatched[i], expected[i]) << "warm request " << i;

  const ServiceStats stats = service.stats();
  EXPECT_GE(stats.batches, 2u);
  EXPECT_GT(stats.batched_requests, 0u);
}

TEST(Service, ConcurrentSubmitMatchesSequential) {
  const exp::Scenario a = small_scenario(6, 24, 5.0);
  const exp::Scenario b = small_scenario(8, 32, 3.0);
  std::vector<Request> requests;
  for (std::uint64_t i = 0; i < 24; ++i) {
    const exp::Scenario& scenario = i % 3 == 0 ? b : a;
    const char* configs = i % 2 == 0 ? "paper" : "ig_local,stf_local";
    requests.push_back(make_request(i, scenario, i % 4, configs,
                                    i % 5 == 0 ? "tenant_b" : "tenant_a"));
  }

  Service reference(8);
  std::vector<std::string> expected;
  for (const Request& request : requests)
    expected.push_back(response_of(reference, request));

  Service service(8);
  std::vector<std::string> got(requests.size());
  std::vector<std::thread> threads;
  threads.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i)
    threads.emplace_back([&service, &requests, &got, i] {
      got[i] = service.submit(requests[i]);
    });
  for (std::thread& thread : threads) thread.join();

  for (std::size_t i = 0; i < requests.size(); ++i)
    EXPECT_EQ(got[i], expected[i]) << "request " << i;
  // 24 threads funneled through the leader: some batching must occur is
  // not guaranteed (scheduling), but the request count is.
  EXPECT_EQ(service.stats().requests, requests.size());
}

TEST(Service, NonEvaluationOpsAreLoudErrors) {
  Service service(2);
  Request request;
  request.id = 5;
  request.op = Op::Ping;
  const std::string response = service.execute(request);
  EXPECT_NE(response.find("\"ok\":false"), std::string::npos);
  EXPECT_EQ(service.stats().errors, 1u);
}

// ---------------------------------------------------------------------------
// End-to-end server (POSIX)
// ---------------------------------------------------------------------------

#ifdef COREDIS_SERVE_TEST_POSIX

std::string unique_socket_path() {
  // Short path: sockaddr_un caps at ~107 bytes, so /tmp, not the test
  // binary dir.
  return "/tmp/coredis_serve_test_" + std::to_string(::getpid()) + ".sock";
}

int connect_to(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  // The daemon thread binds asynchronously; retry briefly with a fresh
  // socket per attempt (a failed connect leaves the fd unspecified).
  for (int attempt = 0; attempt < 400; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0)
      return fd;
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return -1;
}

std::string request_reply(int fd, const std::string& line) {
  const std::string out = line + "\n";
  EXPECT_EQ(::send(fd, out.data(), out.size(), 0),
            static_cast<ssize_t>(out.size()));
  std::string buffer;
  char c = 0;
  while (::recv(fd, &c, 1, 0) == 1 && c != '\n') buffer += c;
  return buffer;
}

TEST(Server, EndToEndOverTempSocket) {
  ServerOptions options;
  options.socket_path = unique_socket_path();
  options.pool_capacity = 4;
  options.replace_stale_socket = true;
  Server server(options);
  std::thread daemon([&server] { server.run(); });

  const int fd = connect_to(options.socket_path);
  ASSERT_GE(fd, 0);

  EXPECT_EQ(request_reply(fd, R"({"id":1,"op":"ping"})"),
            R"({"id":1,"ok":true,"op":"ping"})");

  const std::string what_if = request_reply(
      fd, R"({"id":2,"op":"what_if","scenario":"n = 6; p = 24",)"
          R"("configs":"ig_local"})");
  EXPECT_NE(what_if.find("\"ok\":true"), std::string::npos) << what_if;
  EXPECT_NE(what_if.find("\"baseline_makespan\":"), std::string::npos);

  // The response must be byte-identical to the transport-free service
  // path — the socket adds nothing to the result.
  Request request;
  std::string error;
  ASSERT_TRUE(parse_request(
      R"({"id":2,"op":"what_if","scenario":"n = 6; p = 24",)"
      R"("configs":"ig_local"})",
      request, error));
  Service reference(2);
  EXPECT_EQ(what_if, reference.execute(request));

  const std::string bad = request_reply(fd, R"({"id":3,"op":"nope"})");
  EXPECT_NE(bad.find("\"ok\":false"), std::string::npos) << bad;

  // Registry policy strings ride the 'policy' field end to end...
  const std::string via_policy = request_reply(
      fd, R"({"id":6,"op":"what_if","scenario":"n = 6; p = 24",)"
          R"json("policy":"bandit(window=5)"})json");
  EXPECT_NE(via_policy.find("\"ok\":true"), std::string::npos) << via_policy;
  EXPECT_NE(via_policy.find("\"name\":\"bandit(window=5)\""),
            std::string::npos)
      << via_policy;

  // ...and an unknown policy is a structured error on a live
  // connection, not a hangup: the next request still answers.
  const std::string unknown = request_reply(
      fd, R"({"id":7,"op":"what_if","scenario":"n = 6; p = 24",)"
          R"("policy":"frobnicate"})");
  EXPECT_NE(unknown.find("\"id\":7,\"ok\":false"), std::string::npos)
      << unknown;
  EXPECT_NE(unknown.find("unknown policy 'frobnicate'"), std::string::npos)
      << unknown;
  EXPECT_EQ(request_reply(fd, R"({"id":8,"op":"ping"})"),
            R"({"id":8,"ok":true,"op":"ping"})");

  const std::string stats = request_reply(fd, R"({"id":4,"op":"stats"})");
  EXPECT_NE(stats.find("\"op\":\"stats\""), std::string::npos) << stats;

  // Graceful shutdown: acknowledged, then the daemon exits and unlinks
  // its socket.
  const std::string bye = request_reply(fd, R"({"id":5,"op":"shutdown"})");
  EXPECT_EQ(bye, R"({"id":5,"ok":true,"op":"shutdown"})");
  ::close(fd);
  daemon.join();
  EXPECT_FALSE(std::filesystem::exists(options.socket_path))
      << "a graceful stop must unlink the socket";
}

TEST(Server, ConcurrentClients) {
  ServerOptions options;
  options.socket_path = unique_socket_path() + ".many";
  options.pool_capacity = 4;
  options.replace_stale_socket = true;
  Server server(options);
  std::thread daemon([&server] { server.run(); });

  // The sequential reference responses, computed transport-free.
  std::vector<std::string> lines;
  std::vector<std::string> expected;
  Service reference(4);
  for (int i = 0; i < 16; ++i) {
    std::string line = "{\"id\":" + std::to_string(i) +
                       ",\"op\":\"what_if\",\"scenario\":\"n = 6; p = 24\","
                       "\"rep\":" +
                       std::to_string(i % 3) + ",\"configs\":\"" +
                       (i % 2 == 0 ? "ig_local" : "stf_local") + "\"}";
    Request request;
    std::string error;
    ASSERT_TRUE(parse_request(line, request, error)) << error;
    expected.push_back(reference.execute(request));
    lines.push_back(std::move(line));
  }

  std::vector<std::string> got(lines.size());
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < lines.size(); ++i)
    clients.emplace_back([&, i] {
      const int fd = connect_to(options.socket_path);
      ASSERT_GE(fd, 0);
      got[i] = request_reply(fd, lines[i]);
      ::close(fd);
    });
  for (std::thread& client : clients) client.join();

  for (std::size_t i = 0; i < lines.size(); ++i)
    EXPECT_EQ(got[i], expected[i]) << "client " << i;

  server.request_stop();
  daemon.join();
}

TEST(Server, RefusesExistingSocketWithoutReplace) {
  const std::string path = unique_socket_path() + ".stale";
  {
    std::ofstream stale(path);  // a regular file squatting on the path
  }
  ServerOptions options;
  options.socket_path = path;
  Server server(options);
  EXPECT_THROW(server.run(), std::runtime_error);
  // With --replace a *regular file* is still refused — only sockets are
  // fair game to take over.
  options.replace_stale_socket = true;
  Server replacing(options);
  EXPECT_THROW(replacing.run(), std::runtime_error);
  std::filesystem::remove(path);
}

#endif  // COREDIS_SERVE_TEST_POSIX

}  // namespace
}  // namespace coredis::serve
