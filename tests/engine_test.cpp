/// Tests of the event-driven engine (Algorithm 2): fault-free analytic
/// makespans, determinism under trace replay, rollback accounting, blackout
/// windows, and baseline behavior without redistribution.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "core/optimal_schedule.hpp"
#include "fault/exponential.hpp"
#include "fault/trace.hpp"
#include "speedup/presets.hpp"
#include "speedup/synthetic.hpp"
#include "util/units.hpp"

namespace coredis::core {
namespace {

Pack make_pack(std::vector<double> sizes, double f = 0.08) {
  std::vector<TaskSpec> tasks;
  for (double m : sizes) tasks.push_back({m});
  return Pack(std::move(tasks), std::make_shared<speedup::SyntheticModel>(f));
}

checkpoint::Model faulty_model(double mtbf_years = 100.0, double c = 1.0) {
  return checkpoint::Model(
      {units::years(mtbf_years), 60.0, c, checkpoint::PeriodRule::Young, 0.0});
}

checkpoint::Model fault_free_model() {
  return checkpoint::Model({0.0, 60.0, 1.0, checkpoint::PeriodRule::Young, 0.0});
}

EngineConfig no_redistribution() {
  return {EndPolicy::None, FailurePolicy::None, false};
}

TEST(Engine, FaultFreeNoRedistributionMatchesAnalyticMakespan) {
  const Pack pack = make_pack({2.0e6, 1.5e6});
  const checkpoint::Model resilience = fault_free_model();
  Engine engine(pack, resilience, 8, no_redistribution());
  fault::NullGenerator faults(8);
  const RunResult result = engine.run(faults);

  // The engine must reproduce exactly the Algorithm 1 allocation's
  // fault-free times.
  const ExpectedTimeModel model(pack, resilience);
  const auto sigma = optimal_schedule(model, 8);
  double expected = 0.0;
  for (int i = 0; i < pack.size(); ++i)
    expected = std::max(
        expected, pack.fault_free_time(i, sigma[static_cast<std::size_t>(i)]));
  EXPECT_NEAR(result.makespan, expected, 1e-6 * expected);
  EXPECT_EQ(result.faults_drawn, 0);
  EXPECT_EQ(result.redistributions, 0);

  // Completion times are per task and positive.
  for (double t : result.completion_times) EXPECT_GT(t, 0.0);
}

TEST(Engine, RejectsInvalidPlatforms) {
  const Pack pack = make_pack({2.0e6, 1.5e6});
  const checkpoint::Model resilience = fault_free_model();
  EXPECT_THROW(Engine(pack, resilience, 2, no_redistribution()),
               std::invalid_argument);
  EXPECT_THROW(Engine(pack, resilience, 5, no_redistribution()),
               std::invalid_argument);
}

TEST(Engine, DeterministicOnReplayedTrace) {
  const Pack pack = make_pack({2.0e6, 1.5e6, 2.4e6});
  const checkpoint::Model resilience = faulty_model(2.0);
  const EngineConfig config{EndPolicy::Local, FailurePolicy::IteratedGreedy,
                            false};
  Engine engine(pack, resilience, 12, config);

  auto record = std::make_unique<fault::RecordingGenerator>(
      std::make_unique<fault::ExponentialGenerator>(
          12, 1.0 / units::years(2.0), Rng(99)));
  fault::RecordingGenerator& recorder = *record;
  const RunResult first = engine.run(recorder);

  fault::TraceGenerator replay(12, recorder.recorded());
  const RunResult second = engine.run(replay);
  EXPECT_DOUBLE_EQ(first.makespan, second.makespan);
  EXPECT_EQ(first.faults_effective, second.faults_effective);
  EXPECT_EQ(first.redistributions, second.redistributions);
  for (int i = 0; i < pack.size(); ++i)
    EXPECT_DOUBLE_EQ(first.completion_times[static_cast<std::size_t>(i)],
                     second.completion_times[static_cast<std::size_t>(i)]);
}

TEST(Engine, SameSeedGeneratorsReplayIdentically) {
  // Two generators with the same seed give the same stream: the property
  // the campaign runner relies on to compare heuristics fairly.
  const Pack pack = make_pack({2.0e6, 1.5e6});
  const checkpoint::Model resilience = faulty_model(5.0);
  Engine engine(pack, resilience, 8, no_redistribution());
  fault::ExponentialGenerator a(8, 1.0 / units::years(5.0), Rng(7));
  fault::ExponentialGenerator b(8, 1.0 / units::years(5.0), Rng(7));
  EXPECT_DOUBLE_EQ(engine.run(a).makespan, engine.run(b).makespan);
}

TEST(Engine, SingleFaultDelaysExactlyByRollback) {
  // One task, one pair, one fault right before the first checkpoint: the
  // task loses everything computed so far plus downtime + recovery.
  const Pack pack = make_pack({2.0e6});
  const checkpoint::Model resilience = faulty_model(100.0);
  const ExpectedTimeModel model(pack, resilience);
  const double tau = model.period(0, 2);

  Engine engine(pack, resilience, 2, no_redistribution());
  const double fault_time = 0.9 * tau;  // inside the first period
  fault::TraceGenerator faults(2, {{fault_time, 0}});
  const RunResult result = engine.run(faults);

  const double clean = model.simulated_duration(0, 2, 1.0);
  const double restart = fault_time + resilience.downtime() +
                         model.recovery_time(0, 2);
  EXPECT_NEAR(result.makespan, restart + clean, 1e-6 * clean);
  EXPECT_EQ(result.faults_effective, 1);
}

TEST(Engine, FaultAfterCheckpointOnlyLosesPartialPeriod) {
  const Pack pack = make_pack({2.0e6});
  const checkpoint::Model resilience = faulty_model(100.0);
  const ExpectedTimeModel model(pack, resilience);
  const double tau = model.period(0, 2);
  const double cost = model.checkpoint_cost(0, 2);
  const double t_ij = model.fault_free_time(0, 2);

  // The task spans a bit more than one period here; pick a fault date
  // after the first checkpoint (tau) and before the projected completion.
  const double clean = model.simulated_duration(0, 2, 1.0);
  ASSERT_GT(clean, 1.05 * tau);
  const double fault_time = 0.5 * (tau + clean);

  Engine engine(pack, resilience, 2, no_redistribution());
  fault::TraceGenerator faults(2, {{fault_time, 1}});
  const RunResult result = engine.run(faults);

  const double alpha_left = 1.0 - (tau - cost) / t_ij;
  const double restart = fault_time + resilience.downtime() +
                         model.recovery_time(0, 2);
  const double expected = restart + model.simulated_duration(0, 2, alpha_left);
  EXPECT_NEAR(result.makespan, expected, 1e-6 * expected);
}

TEST(Engine, FaultsOnIdleProcessorsAreDiscarded) {
  const Pack pack = make_pack({2.0e6});
  const checkpoint::Model resilience = faulty_model();
  Engine engine(pack, resilience, 4, no_redistribution());
  // Processors 2,3 stay idle (task uses the first pair; Algorithm 1 stops
  // when extra processors no longer help... they do help here, so use a
  // trace on a processor the task certainly does not hold is impossible —
  // instead strike far beyond completion: the fault lands after the task
  // finished and must not crash anything.)
  fault::TraceGenerator faults(4, {{1.0e12, 3}});
  const RunResult result = engine.run(faults);
  EXPECT_EQ(result.faults_effective, 0);
  EXPECT_GE(result.faults_drawn, 0);
}

TEST(Engine, BlackoutWindowDiscardsSecondFault) {
  const Pack pack = make_pack({2.0e6});
  const checkpoint::Model resilience = faulty_model(100.0);
  const ExpectedTimeModel model(pack, resilience);
  const double tau = model.period(0, 2);
  Engine engine(pack, resilience, 2, no_redistribution());
  // Second fault lands during downtime+recovery of the first: discarded.
  fault::TraceGenerator faults(2, {{0.5 * tau, 0}, {0.5 * tau + 1.0, 0}});
  const RunResult result = engine.run(faults);
  EXPECT_EQ(result.faults_effective, 1);
  EXPECT_EQ(result.faults_discarded, 1);
}

TEST(Engine, BuddyFatalRiskDetectedOnPartnerStrike) {
  const Pack pack = make_pack({2.0e6});
  const checkpoint::Model resilience = faulty_model(100.0);
  const ExpectedTimeModel model(pack, resilience);
  const double tau = model.period(0, 2);
  Engine engine(pack, resilience, 2, no_redistribution());
  // First fault on processor 0; the second strikes its buddy (processor
  // 1, same pair) during the downtime+recovery window: fatal under the
  // real double-checkpointing protocol, counted as a risk here.
  fault::TraceGenerator faults(2, {{0.5 * tau, 0}, {0.5 * tau + 1.0, 1}});
  const RunResult result = engine.run(faults);
  EXPECT_EQ(result.buddy_fatal_risks, 1);
  EXPECT_EQ(result.faults_discarded, 1);
}

TEST(Engine, RepeatFaultOnSameProcessorIsNotFatalRisk) {
  const Pack pack = make_pack({2.0e6});
  const checkpoint::Model resilience = faulty_model(100.0);
  const ExpectedTimeModel model(pack, resilience);
  const double tau = model.period(0, 2);
  Engine engine(pack, resilience, 2, no_redistribution());
  // Second fault hits the same node: the buddy still holds both copies.
  fault::TraceGenerator faults(2, {{0.5 * tau, 0}, {0.5 * tau + 1.0, 0}});
  const RunResult result = engine.run(faults);
  EXPECT_EQ(result.buddy_fatal_risks, 0);
}

TEST(Engine, BuddyFatalRisksAreRareAtPaperScale) {
  const Pack pack = make_pack({2.0e6, 1.8e6, 2.2e6, 1.6e6});
  const checkpoint::Model resilience = faulty_model(5.0);
  Engine engine(pack, resilience, 16,
                {EndPolicy::Local, FailurePolicy::IteratedGreedy, false});
  int risks = 0;
  int effective = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    fault::ExponentialGenerator faults(16, 1.0 / units::years(5.0), Rng(seed));
    const RunResult result = engine.run(faults);
    risks += result.buddy_fatal_risks;
    effective += result.faults_effective;
  }
  EXPECT_GT(effective, 20);
  // Recovery windows are ~1e6 s against ~1e7 s inter-fault gaps per pair.
  EXPECT_LT(risks, effective / 5);
}

TEST(Engine, ManyFaultsStillComplete) {
  const Pack pack = make_pack({2.0e6, 1.8e6, 2.2e6});
  const checkpoint::Model resilience = faulty_model(0.5);  // fault storm
  Engine engine(pack, resilience, 12,
                {EndPolicy::Local, FailurePolicy::ShortestTasksFirst, false});
  fault::ExponentialGenerator faults(12, 1.0 / units::years(0.5), Rng(13));
  const RunResult result = engine.run(faults);
  EXPECT_GT(result.faults_effective, 10);
  EXPECT_GT(result.makespan, 0.0);
  for (double t : result.completion_times) EXPECT_GT(t, 0.0);
}

TEST(Engine, MixedPerTaskProfilesRunEndToEnd) {
  // One scalable and one bandwidth-bound task (per-task profiles): the
  // scheduler must route the spare capacity to the scalable one.
  std::vector<TaskSpec> tasks;
  tasks.push_back({2.0e6, speedup::make_preset("minimd_like", 2.0e6)});
  tasks.push_back({2.0e6, speedup::make_preset("hpccg_like", 2.0e6)});
  const Pack pack(std::move(tasks),
                  std::make_shared<speedup::SyntheticModel>(0.08));
  const checkpoint::Model resilience = faulty_model(50.0);

  const ExpectedTimeModel model(pack, resilience);
  const auto sigma = optimal_schedule(model, 64);
  // Min-max allocation feeds the straggler: the bandwidth-bound task
  // scales poorly, stays the bottleneck, and absorbs *more* processors
  // (each pair still shaves a little off the pack's makespan).
  EXPECT_GT(sigma[1], sigma[0]);

  Engine engine(pack, resilience, 64,
                {EndPolicy::Local, FailurePolicy::IteratedGreedy, false});
  fault::ExponentialGenerator faults(64, 1.0 / units::years(50.0), Rng(3));
  const RunResult result = engine.run(faults);
  EXPECT_GT(result.makespan, 0.0);
  for (double t : result.completion_times) EXPECT_GT(t, 0.0);
}

TEST(Engine, TraceRecordsOnePerEffectiveFault) {
  const Pack pack = make_pack({2.0e6, 1.8e6});
  const checkpoint::Model resilience = faulty_model(1.0);
  Engine engine(pack, resilience, 8,
                {EndPolicy::Local, FailurePolicy::IteratedGreedy, true});
  fault::ExponentialGenerator faults(8, 1.0 / units::years(1.0), Rng(5));
  const RunResult result = engine.run(faults);
  EXPECT_EQ(static_cast<int>(result.trace.size()), result.faults_effective);
  double last = 0.0;
  for (const FaultRecord& record : result.trace) {
    EXPECT_GE(record.time, last);
    EXPECT_GT(record.predicted_makespan, 0.0);
    EXPECT_GE(record.allocation_stddev, 0.0);
    last = record.time;
  }
}

}  // namespace
}  // namespace coredis::core
