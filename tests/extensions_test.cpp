/// Tests of the future-work extensions: multi-pack partitioning and the
/// silent-error (verified checkpointing) model.

#include <cmath>
#include <cstddef>
#include <gtest/gtest.h>
#include <memory>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "extensions/pack_partition.hpp"
#include "extensions/silent_errors.hpp"
#include "extensions/silent_sim.hpp"
#include "speedup/synthetic.hpp"
#include "util/units.hpp"

namespace coredis::extensions {
namespace {

core::Pack make_pack(std::vector<double> sizes) {
  std::vector<core::TaskSpec> tasks;
  for (double m : sizes) tasks.push_back({m});
  return core::Pack(std::move(tasks),
                    std::make_shared<speedup::SyntheticModel>(0.08));
}

TEST(PackPartition, RespectsCapacityAndCoversAllTasks) {
  const core::Pack pack =
      make_pack({2.0e6, 1.0e6, 2.5e6, 1.5e6, 1.2e6, 2.2e6});
  // p = 4: at most 2 tasks per pack -> at least 3 packs.
  const PartitionResult partition = partition_lpt(pack, 4);
  EXPECT_EQ(partition.packs, 3);
  std::vector<int> count(static_cast<std::size_t>(partition.packs), 0);
  for (int task = 0; task < pack.size(); ++task) {
    const int k = partition.pack_of[static_cast<std::size_t>(task)];
    ASSERT_GE(k, 0);
    ASSERT_LT(k, partition.packs);
    ++count[static_cast<std::size_t>(k)];
  }
  for (int c : count) EXPECT_LE(c, 2);
}

TEST(PackPartition, SinglePackWhenEverythingFits) {
  const core::Pack pack = make_pack({2.0e6, 1.0e6});
  const PartitionResult partition = partition_lpt(pack, 64);
  EXPECT_EQ(partition.packs, 1);
}

TEST(PackPartition, BalancesLoadLptStyle) {
  // Four equal tasks into two packs of two: loads must be equal.
  const core::Pack pack = make_pack({2.0e6, 2.0e6, 2.0e6, 2.0e6});
  const PartitionResult partition = partition_lpt(pack, 4);
  ASSERT_EQ(partition.packs, 2);
  int first = 0;
  for (int v : partition.pack_of) first += v == 0;
  EXPECT_EQ(first, 2);
}

TEST(PackPartition, RejectsInfeasibleRequests) {
  const core::Pack pack = make_pack({2.0e6, 1.0e6, 2.5e6});
  EXPECT_THROW(partition_lpt(pack, 4, 1), std::invalid_argument);
}

TEST(PackPartition, MultiPackExecutionSumsMakespans) {
  const core::Pack pack = make_pack({2.0e6, 1.0e6, 2.5e6, 1.5e6});
  const checkpoint::Model resilience(
      {0.0, 60.0, 1.0, checkpoint::PeriodRule::Young, 0.0});
  const PartitionResult partition = partition_lpt(pack, 4);
  const MultiPackResult result = run_multi_pack(
      pack, resilience, 4, {core::EndPolicy::Local, core::FailurePolicy::None,
                            false},
      partition, 7, 0.0);
  ASSERT_EQ(static_cast<int>(result.per_pack.size()), partition.packs);
  double sum = 0.0;
  for (const auto& run : result.per_pack) sum += run.makespan;
  EXPECT_DOUBLE_EQ(result.total_makespan, sum);
  EXPECT_GT(result.total_makespan, 0.0);
}

TEST(PackPartition, MorePacksAllowSmallerPlatform) {
  // 6 tasks on p=4 need >= 3 packs; explicitly asking 4 packs also works.
  const core::Pack pack =
      make_pack({2.0e6, 1.0e6, 2.5e6, 1.5e6, 1.2e6, 2.2e6});
  const PartitionResult partition = partition_lpt(pack, 4, 4);
  EXPECT_EQ(partition.packs, 4);
}

TEST(SilentErrors, CleanLimitIsJustWorkPlusOverheads) {
  silent::Params params;
  params.error_rate = 0.0;
  params.verification_cost = 5.0;
  params.checkpoint_cost = 10.0;
  params.recovery_cost = 10.0;
  params.processors = 4;
  EXPECT_DOUBLE_EQ(silent::expected_period_time(params, 100.0), 115.0);
  // No errors: the optimal quantum is "never verify early" (max_work).
  EXPECT_DOUBLE_EQ(silent::optimal_work_quantum(params, 1.0e6), 1.0e6);
}

TEST(SilentErrors, ExpectedTimeGrowsWithErrorRate) {
  silent::Params slow;
  slow.error_rate = 1e-7;
  slow.verification_cost = 5.0;
  slow.checkpoint_cost = 10.0;
  slow.recovery_cost = 10.0;
  slow.processors = 8;
  silent::Params fast = slow;
  fast.error_rate = 1e-5;
  EXPECT_GT(silent::expected_execution_time(fast, 1.0e6),
            silent::expected_execution_time(slow, 1.0e6));
}

TEST(SilentErrors, OptimalQuantumBalancesVerificationAndRisk) {
  silent::Params params;
  params.error_rate = 1e-6;
  params.verification_cost = 2.0;
  params.checkpoint_cost = 8.0;
  params.recovery_cost = 8.0;
  params.processors = 4;
  const double quantum = silent::optimal_work_quantum(params, 1.0e7);
  // Interior optimum: far from both search bounds.
  EXPECT_GT(quantum, 10.0);
  EXPECT_LT(quantum, 1.0e6);
  // First-order check: sqrt(costs/rate)-scale, like Young's formula.
  const double rate = params.error_rate * params.processors;
  const double overheads = params.verification_cost + params.checkpoint_cost;
  const double young_like = std::sqrt(overheads / rate);
  EXPECT_GT(quantum, 0.2 * young_like);
  EXPECT_LT(quantum, 5.0 * young_like);
}

TEST(SilentErrors, OverheadRatioIsUnimodalAroundOptimum) {
  silent::Params params;
  params.error_rate = 1e-6;
  params.verification_cost = 2.0;
  params.checkpoint_cost = 8.0;
  params.recovery_cost = 8.0;
  params.processors = 4;
  const double star = silent::optimal_work_quantum(params, 1.0e7);
  const double at_star = silent::expected_overhead_ratio(params, star);
  EXPECT_LT(at_star, silent::expected_overhead_ratio(params, star / 10.0));
  EXPECT_LT(at_star, silent::expected_overhead_ratio(params, star * 10.0));
}

TEST(SilentErrorSim, CleanRunMatchesArithmetic) {
  silent::Params params;
  params.error_rate = 0.0;
  params.verification_cost = 5.0;
  params.checkpoint_cost = 10.0;
  params.recovery_cost = 10.0;
  params.processors = 4;
  Rng rng(1);
  const auto result = silent::simulate(params, 1000.0, 100.0, rng);
  // 10 periods of (100 + 5 + 10), no corruption.
  EXPECT_EQ(result.periods_executed, 10);
  EXPECT_EQ(result.corrupted_periods, 0);
  EXPECT_DOUBLE_EQ(result.wall_clock, 10.0 * 115.0);
}

TEST(SilentErrorSim, ShortLastQuantumHandled) {
  silent::Params params;
  params.error_rate = 0.0;
  params.verification_cost = 1.0;
  params.checkpoint_cost = 2.0;
  params.recovery_cost = 2.0;
  params.processors = 1;
  Rng rng(2);
  const auto result = silent::simulate(params, 250.0, 100.0, rng);
  EXPECT_EQ(result.periods_executed, 3);  // 100 + 100 + 50
  EXPECT_DOUBLE_EQ(result.wall_clock, 250.0 + 3.0 * 3.0);
}

TEST(SilentErrorSim, CorruptionRateMatchesTheory) {
  silent::Params params;
  params.error_rate = 1e-5;
  params.verification_cost = 5.0;
  params.checkpoint_cost = 10.0;
  params.recovery_cost = 10.0;
  params.processors = 4;
  Rng rng(3);
  const double quantum = 500.0;
  const auto result = silent::simulate(params, 2.0e6, quantum, rng);
  const double span =
      quantum + params.verification_cost + params.checkpoint_cost;
  const double p_corrupt = 1.0 - std::exp(-4e-5 * span);
  const double observed = static_cast<double>(result.corrupted_periods) /
                          static_cast<double>(result.periods_executed);
  EXPECT_NEAR(observed, p_corrupt, 0.25 * p_corrupt + 0.002);
}

/// The analytic expected time (geometric retries) must match Monte-Carlo
/// simulation of the same protocol — certifying both.
TEST(SilentErrorSim, AnalyticModelMatchesSimulation) {
  silent::Params params;
  params.error_rate = 2e-6;
  params.verification_cost = 5.0;
  params.checkpoint_cost = 20.0;
  params.recovery_cost = 20.0;
  params.processors = 8;
  const double quantum = 1000.0;
  const double total = 100.0 * quantum;  // exact multiple: periods align
  const double analytic =
      100.0 * silent::expected_period_time(params, quantum);
  const double simulated =
      silent::simulate_mean(params, total, quantum, 300, 77);
  EXPECT_NEAR(simulated, analytic, 0.02 * analytic);
}

TEST(SilentErrorSim, OptimalQuantumBeatsNeighborsInSimulation) {
  silent::Params params;
  params.error_rate = 1e-6;
  params.verification_cost = 2.0;
  params.checkpoint_cost = 8.0;
  params.recovery_cost = 8.0;
  params.processors = 4;
  const double total = 3.0e5;
  const double star = silent::optimal_work_quantum(params, total);
  const double at_star = silent::simulate_mean(params, total, star, 400, 5);
  const double smaller =
      silent::simulate_mean(params, total, star / 8.0, 400, 5);
  const double larger =
      silent::simulate_mean(params, total, star * 8.0, 400, 5);
  EXPECT_LT(at_star, smaller);
  EXPECT_LT(at_star, larger);
}

TEST(SilentErrors, ExecutionTimeExceedsWork) {
  silent::Params params;
  params.error_rate = 1e-6;
  params.verification_cost = 2.0;
  params.checkpoint_cost = 8.0;
  params.recovery_cost = 8.0;
  params.processors = 2;
  EXPECT_GT(silent::expected_execution_time(params, 5.0e5), 5.0e5);
}

}  // namespace
}  // namespace coredis::extensions
