/// Tests of the future-work extensions: multi-pack partitioning and the
/// silent-error (verified checkpointing) model.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <memory>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "extensions/batch.hpp"
#include "extensions/online.hpp"
#include "extensions/pack_partition.hpp"
#include "extensions/silent_errors.hpp"
#include "extensions/silent_sim.hpp"
#include "fault/exponential.hpp"
#include "speedup/synthetic.hpp"
#include "speedup/table_profile.hpp"
#include "util/units.hpp"

namespace coredis::extensions {
namespace {

core::Pack make_pack(std::vector<double> sizes) {
  std::vector<core::TaskSpec> tasks;
  for (double m : sizes) tasks.push_back({m});
  return core::Pack(std::move(tasks),
                    std::make_shared<speedup::SyntheticModel>(0.08));
}

TEST(PackPartition, RespectsCapacityAndCoversAllTasks) {
  const core::Pack pack =
      make_pack({2.0e6, 1.0e6, 2.5e6, 1.5e6, 1.2e6, 2.2e6});
  // p = 4: at most 2 tasks per pack -> at least 3 packs.
  const PartitionResult partition = partition_lpt(pack, 4);
  EXPECT_EQ(partition.packs, 3);
  std::vector<int> count(static_cast<std::size_t>(partition.packs), 0);
  for (int task = 0; task < pack.size(); ++task) {
    const int k = partition.pack_of[static_cast<std::size_t>(task)];
    ASSERT_GE(k, 0);
    ASSERT_LT(k, partition.packs);
    ++count[static_cast<std::size_t>(k)];
  }
  for (int c : count) EXPECT_LE(c, 2);
}

TEST(PackPartition, SinglePackWhenEverythingFits) {
  const core::Pack pack = make_pack({2.0e6, 1.0e6});
  const PartitionResult partition = partition_lpt(pack, 64);
  EXPECT_EQ(partition.packs, 1);
}

TEST(PackPartition, BalancesLoadLptStyle) {
  // Four equal tasks into two packs of two: loads must be equal.
  const core::Pack pack = make_pack({2.0e6, 2.0e6, 2.0e6, 2.0e6});
  const PartitionResult partition = partition_lpt(pack, 4);
  ASSERT_EQ(partition.packs, 2);
  int first = 0;
  for (int v : partition.pack_of) first += v == 0;
  EXPECT_EQ(first, 2);
}

TEST(PackPartition, RejectsInfeasibleRequests) {
  const core::Pack pack = make_pack({2.0e6, 1.0e6, 2.5e6});
  EXPECT_THROW(partition_lpt(pack, 4, 1), std::invalid_argument);
}

TEST(PackPartition, MultiPackExecutionSumsMakespans) {
  const core::Pack pack = make_pack({2.0e6, 1.0e6, 2.5e6, 1.5e6});
  const checkpoint::Model resilience(
      {0.0, 60.0, 1.0, checkpoint::PeriodRule::Young, 0.0});
  const PartitionResult partition = partition_lpt(pack, 4);
  const MultiPackResult result = run_multi_pack(
      pack, resilience, 4, {core::EndPolicy::Local, core::FailurePolicy::None,
                            false},
      partition, 7, 0.0);
  ASSERT_EQ(static_cast<int>(result.per_pack.size()), partition.packs);
  double sum = 0.0;
  for (const auto& run : result.per_pack) sum += run.makespan;
  EXPECT_DOUBLE_EQ(result.total_makespan, sum);
  EXPECT_GT(result.total_makespan, 0.0);
}

TEST(PackPartition, MorePacksAllowSmallerPlatform) {
  // 6 tasks on p=4 need >= 3 packs; explicitly asking 4 packs also works.
  const core::Pack pack =
      make_pack({2.0e6, 1.0e6, 2.5e6, 1.5e6, 1.2e6, 2.2e6});
  const PartitionResult partition = partition_lpt(pack, 4, 4);
  EXPECT_EQ(partition.packs, 4);
}

TEST(SilentErrors, CleanLimitIsJustWorkPlusOverheads) {
  silent::Params params;
  params.error_rate = 0.0;
  params.verification_cost = 5.0;
  params.checkpoint_cost = 10.0;
  params.recovery_cost = 10.0;
  params.processors = 4;
  EXPECT_DOUBLE_EQ(silent::expected_period_time(params, 100.0), 115.0);
  // No errors: the optimal quantum is "never verify early" (max_work).
  EXPECT_DOUBLE_EQ(silent::optimal_work_quantum(params, 1.0e6), 1.0e6);
}

TEST(SilentErrors, ExpectedTimeGrowsWithErrorRate) {
  silent::Params slow;
  slow.error_rate = 1e-7;
  slow.verification_cost = 5.0;
  slow.checkpoint_cost = 10.0;
  slow.recovery_cost = 10.0;
  slow.processors = 8;
  silent::Params fast = slow;
  fast.error_rate = 1e-5;
  EXPECT_GT(silent::expected_execution_time(fast, 1.0e6),
            silent::expected_execution_time(slow, 1.0e6));
}

TEST(SilentErrors, OptimalQuantumBalancesVerificationAndRisk) {
  silent::Params params;
  params.error_rate = 1e-6;
  params.verification_cost = 2.0;
  params.checkpoint_cost = 8.0;
  params.recovery_cost = 8.0;
  params.processors = 4;
  const double quantum = silent::optimal_work_quantum(params, 1.0e7);
  // Interior optimum: far from both search bounds.
  EXPECT_GT(quantum, 10.0);
  EXPECT_LT(quantum, 1.0e6);
  // First-order check: sqrt(costs/rate)-scale, like Young's formula.
  const double rate = params.error_rate * params.processors;
  const double overheads = params.verification_cost + params.checkpoint_cost;
  const double young_like = std::sqrt(overheads / rate);
  EXPECT_GT(quantum, 0.2 * young_like);
  EXPECT_LT(quantum, 5.0 * young_like);
}

TEST(SilentErrors, OverheadRatioIsUnimodalAroundOptimum) {
  silent::Params params;
  params.error_rate = 1e-6;
  params.verification_cost = 2.0;
  params.checkpoint_cost = 8.0;
  params.recovery_cost = 8.0;
  params.processors = 4;
  const double star = silent::optimal_work_quantum(params, 1.0e7);
  const double at_star = silent::expected_overhead_ratio(params, star);
  EXPECT_LT(at_star, silent::expected_overhead_ratio(params, star / 10.0));
  EXPECT_LT(at_star, silent::expected_overhead_ratio(params, star * 10.0));
}

TEST(SilentErrorSim, CleanRunMatchesArithmetic) {
  silent::Params params;
  params.error_rate = 0.0;
  params.verification_cost = 5.0;
  params.checkpoint_cost = 10.0;
  params.recovery_cost = 10.0;
  params.processors = 4;
  Rng rng(1);
  const auto result = silent::simulate(params, 1000.0, 100.0, rng);
  // 10 periods of (100 + 5 + 10), no corruption.
  EXPECT_EQ(result.periods_executed, 10);
  EXPECT_EQ(result.corrupted_periods, 0);
  EXPECT_DOUBLE_EQ(result.wall_clock, 10.0 * 115.0);
}

TEST(SilentErrorSim, ShortLastQuantumHandled) {
  silent::Params params;
  params.error_rate = 0.0;
  params.verification_cost = 1.0;
  params.checkpoint_cost = 2.0;
  params.recovery_cost = 2.0;
  params.processors = 1;
  Rng rng(2);
  const auto result = silent::simulate(params, 250.0, 100.0, rng);
  EXPECT_EQ(result.periods_executed, 3);  // 100 + 100 + 50
  EXPECT_DOUBLE_EQ(result.wall_clock, 250.0 + 3.0 * 3.0);
}

TEST(SilentErrorSim, CorruptionRateMatchesTheory) {
  silent::Params params;
  params.error_rate = 1e-5;
  params.verification_cost = 5.0;
  params.checkpoint_cost = 10.0;
  params.recovery_cost = 10.0;
  params.processors = 4;
  Rng rng(3);
  const double quantum = 500.0;
  const auto result = silent::simulate(params, 2.0e6, quantum, rng);
  const double span =
      quantum + params.verification_cost + params.checkpoint_cost;
  const double p_corrupt = 1.0 - std::exp(-4e-5 * span);
  const double observed = static_cast<double>(result.corrupted_periods) /
                          static_cast<double>(result.periods_executed);
  EXPECT_NEAR(observed, p_corrupt, 0.25 * p_corrupt + 0.002);
}

/// The analytic expected time (geometric retries) must match Monte-Carlo
/// simulation of the same protocol — certifying both.
TEST(SilentErrorSim, AnalyticModelMatchesSimulation) {
  silent::Params params;
  params.error_rate = 2e-6;
  params.verification_cost = 5.0;
  params.checkpoint_cost = 20.0;
  params.recovery_cost = 20.0;
  params.processors = 8;
  const double quantum = 1000.0;
  const double total = 100.0 * quantum;  // exact multiple: periods align
  const double analytic =
      100.0 * silent::expected_period_time(params, quantum);
  const double simulated =
      silent::simulate_mean(params, total, quantum, 300, 77);
  EXPECT_NEAR(simulated, analytic, 0.02 * analytic);
}

TEST(SilentErrorSim, OptimalQuantumBeatsNeighborsInSimulation) {
  silent::Params params;
  params.error_rate = 1e-6;
  params.verification_cost = 2.0;
  params.checkpoint_cost = 8.0;
  params.recovery_cost = 8.0;
  params.processors = 4;
  const double total = 3.0e5;
  const double star = silent::optimal_work_quantum(params, total);
  const double at_star = silent::simulate_mean(params, total, star, 400, 5);
  const double smaller =
      silent::simulate_mean(params, total, star / 8.0, 400, 5);
  const double larger =
      silent::simulate_mean(params, total, star * 8.0, 400, 5);
  EXPECT_LT(at_star, smaller);
  EXPECT_LT(at_star, larger);
}

TEST(SilentErrors, ExecutionTimeExceedsWork) {
  silent::Params params;
  params.error_rate = 1e-6;
  params.verification_cost = 2.0;
  params.checkpoint_cost = 8.0;
  params.recovery_cost = 8.0;
  params.processors = 2;
  EXPECT_GT(silent::expected_execution_time(params, 5.0e5), 5.0e5);
}

// ---- online arrivals (extensions/online.hpp) ------------------------------

checkpoint::Model online_resilience(double mtbf_years) {
  return checkpoint::Model({mtbf_years > 0.0 ? units::years(mtbf_years) : 0.0,
                            60.0, 1.0, checkpoint::PeriodRule::Young, 0.0});
}

TEST(OnlineArrivals, ReleaseTimesFollowTheLaws) {
  const core::Pack pack = make_pack({2.0e6, 1.0e6, 2.5e6, 1.5e6, 1.2e6,
                                     2.2e6, 1.8e6, 2.4e6});
  const checkpoint::Model resilience = online_resilience(25.0);

  ArrivalSpec spec;
  Rng rng(7);
  // None: everything at time 0 regardless of the load factor.
  const std::vector<double> none =
      make_release_times(spec, pack, resilience, 32, rng);
  ASSERT_EQ(none.size(), 8u);
  for (double r : none) EXPECT_EQ(r, 0.0);

  // Poisson: sorted ascending, deterministic in the rng stream, and the
  // load factor scales density (same stream, higher load => earlier).
  spec.law = ArrivalLaw::Poisson;
  spec.load_factor = 0.5;
  Rng rng_a(7);
  const std::vector<double> poisson =
      make_release_times(spec, pack, resilience, 32, rng_a);
  EXPECT_TRUE(std::is_sorted(poisson.begin(), poisson.end()));
  EXPECT_GT(poisson.front(), 0.0);
  Rng rng_b(7);
  const std::vector<double> replay =
      make_release_times(spec, pack, resilience, 32, rng_b);
  EXPECT_EQ(poisson, replay);
  spec.load_factor = 2.0;
  Rng rng_c(7);
  const std::vector<double> dense =
      make_release_times(spec, pack, resilience, 32, rng_c);
  for (std::size_t i = 0; i < dense.size(); ++i)
    EXPECT_DOUBLE_EQ(dense[i], poisson[i] / 4.0);  // rho 0.5 -> 2 is 4x

  // Bulk: exactly `bulk_phases` distinct waves, index order.
  spec.law = ArrivalLaw::Bulk;
  spec.bulk_phases = 4;
  const std::vector<double> bulk =
      make_release_times(spec, pack, resilience, 32, rng);
  std::set<double> waves(bulk.begin(), bulk.end());
  EXPECT_EQ(waves.size(), 4u);
  EXPECT_EQ(bulk.front(), 0.0);
  EXPECT_TRUE(std::is_sorted(bulk.begin(), bulk.end()));
}

TEST(OnlineArrivals, TraceLawLoadsScalesAndValidates) {
  const core::Pack pack = make_pack({2.0e6, 1.0e6, 2.5e6});
  const checkpoint::Model resilience = online_resilience(25.0);
  const auto path = std::filesystem::temp_directory_path() /
                    "coredis_online_trace_test.txt";
  {
    std::ofstream file(path);
    file << "100 50\n75\n";
  }
  ArrivalSpec spec;
  spec.law = ArrivalLaw::Trace;
  spec.trace_path = path.string();
  spec.load_factor = 2.0;
  Rng rng(1);
  const std::vector<double> releases =
      make_release_times(spec, pack, resilience, 8, rng);
  // Sorted ascending and divided by the load factor.
  const std::vector<double> expected{25.0, 37.5, 50.0};
  EXPECT_EQ(releases, expected);

  // Too few entries for the pack fails loudly.
  const core::Pack big = make_pack({2.0e6, 1.0e6, 2.5e6, 1.5e6});
  EXPECT_THROW((void)make_release_times(spec, big, resilience, 8, rng),
               std::runtime_error);
  spec.trace_path = "/nonexistent/coredis_trace";
  EXPECT_THROW((void)make_release_times(spec, pack, resilience, 8, rng),
               std::runtime_error);
  std::filesystem::remove(path);
}

TEST(OnlineArrivals, SparseJobsRunAloneOnTheirBestAllocation) {
  // Releases far apart: every job runs alone, so the malleable scheduler,
  // both rigid baselines and the isolated-run arithmetic must agree.
  const core::Pack pack = make_pack({2.0e6, 1.0e6, 2.5e6});
  const checkpoint::Model resilience = online_resilience(0.0);  // fault-free
  const std::vector<double> releases{0.0, 1.0e9, 2.0e9};
  const int p = 32;

  fault::NullGenerator none_a(p);
  const OnlineResult malleable =
      run_online(pack, resilience, p, releases, none_a);
  fault::NullGenerator none_b(p);
  const BatchResult easy =
      run_batch(pack, resilience, p, releases, {}, none_b);
  fault::NullGenerator none_c(p);
  BatchConfig fcfs;
  fcfs.backfilling = false;
  const BatchResult plain =
      run_batch(pack, resilience, p, releases, fcfs, none_c);

  for (int i = 0; i < pack.size(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    EXPECT_EQ(malleable.start_times[idx], releases[idx]);
    EXPECT_NEAR(malleable.completion_times[idx], easy.completion_times[idx],
                1e-6 * easy.completion_times[idx]);
    EXPECT_EQ(easy.completion_times[idx], plain.completion_times[idx]);
  }
  EXPECT_EQ(malleable.redistributions, 0);
  EXPECT_EQ(malleable.mean_queue_wait, 0.0);
  EXPECT_NEAR(malleable.makespan, easy.makespan, 1e-6 * easy.makespan);
}

TEST(OnlineArrivals, SimultaneousReleaseSharesThePlatform) {
  // Everything released at 0 on a tight platform: the malleable scheduler
  // co-schedules (every job starts at 0) while rigid FCFS serializes.
  const core::Pack pack = make_pack({2.0e6, 1.9e6, 2.1e6, 2.2e6});
  const checkpoint::Model resilience = online_resilience(0.0);
  const std::vector<double> releases(4, 0.0);
  const int p = 8;

  fault::NullGenerator none_a(p);
  const OnlineResult malleable =
      run_online(pack, resilience, p, releases, none_a);
  for (int i = 0; i < pack.size(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    EXPECT_EQ(malleable.start_times[idx], 0.0);
    EXPECT_GT(malleable.completion_times[idx], 0.0);
    // Allocations are buddy pairs within the platform (the value is the
    // job's sigma at its own completion; completions grow survivors, so
    // the sum across different completion instants may exceed p).
    EXPECT_GE(malleable.final_allocation[idx], 2);
    EXPECT_LE(malleable.final_allocation[idx], p);
    EXPECT_EQ(malleable.final_allocation[idx] % 2, 0);
  }

  fault::NullGenerator none_b(p);
  BatchConfig fcfs;
  fcfs.backfilling = false;
  const BatchResult plain =
      run_batch(pack, resilience, p, releases, fcfs, none_b);
  EXPECT_LT(malleable.makespan, plain.makespan);
}

TEST(OnlineArrivals, MalleableResizePaysRedistribution) {
  // Two staggered jobs on a tight platform: admitting the second shrinks
  // the first (one redistribution), and its completion grows the second
  // back (another) — each paying Eq. 9 cost.
  const core::Pack pack = make_pack({2.0e6, 1.0e6});
  const checkpoint::Model resilience = online_resilience(0.0);
  fault::NullGenerator none(8);
  const OnlineResult result =
      run_online(pack, resilience, 8, {0.0, 1.0e5}, none);
  EXPECT_GE(result.redistributions, 1);
  EXPECT_GT(result.redistribution_cost, 0.0);
  EXPECT_EQ(result.start_times[1], 1.0e5);
}

TEST(OnlineArrivals, FaultsRollJobsBack) {
  const core::Pack pack = make_pack({2.0e6, 1.0e6, 2.5e6});
  const checkpoint::Model with_faults = online_resilience(0.5);
  const std::vector<double> releases(3, 0.0);
  const int p = 12;

  fault::ExponentialGenerator faults(p, 1.0 / units::years(0.5), Rng(11));
  const OnlineResult faulty =
      run_online(pack, with_faults, p, releases, faults);
  fault::NullGenerator none(p);
  const OnlineResult clean =
      run_online(pack, with_faults, p, releases, none);
  EXPECT_GT(faulty.faults_effective, 0);
  EXPECT_GT(faulty.makespan, clean.makespan);
}

TEST(OnlineArrivals, DeterministicInItsInputs) {
  const core::Pack pack = make_pack({2.0e6, 1.0e6, 2.5e6, 1.5e6});
  const checkpoint::Model resilience = online_resilience(2.0);
  const std::vector<double> releases{0.0, 5.0e5, 1.0e6, 1.5e6};
  const int p = 16;
  fault::ExponentialGenerator faults_a(p, 1.0 / units::years(2.0), Rng(3));
  fault::ExponentialGenerator faults_b(p, 1.0 / units::years(2.0), Rng(3));
  const OnlineResult a = run_online(pack, resilience, p, releases, faults_a);
  const OnlineResult b = run_online(pack, resilience, p, releases, faults_b);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.completion_times, b.completion_times);
  EXPECT_EQ(a.redistributions, b.redistributions);
  EXPECT_EQ(a.redistribution_cost, b.redistribution_cost);
}

TEST(OnlineArrivals, BatchBackfillsAReleaseDatedCandidate) {
  // Crafted best-useful requests (table profiles): job 0 occupies 2 of 4
  // processors until t = 60, job 1 (released at 10) wants all 4 and
  // blocks, job 2 (released at 20, short, 2 processors) finishes before
  // the head's shadow time — EASY starts it on release, FCFS holds it.
  const auto crafted = [] {
    std::vector<core::TaskSpec> tasks;
    tasks.push_back({1000.0, std::make_shared<speedup::TableModel>(
                                 1000.0,
                                 std::vector<std::pair<int, double>>{
                                     {1, 100.0}, {2, 60.0}})});
    tasks.push_back({1000.0, std::make_shared<speedup::TableModel>(
                                 1000.0,
                                 std::vector<std::pair<int, double>>{
                                     {1, 400.0}, {2, 220.0}, {4, 110.0}})});
    tasks.push_back({1000.0, std::make_shared<speedup::TableModel>(
                                 1000.0,
                                 std::vector<std::pair<int, double>>{
                                     {1, 40.0}, {2, 30.0}})});
    return core::Pack(std::move(tasks),
                      std::make_shared<speedup::SyntheticModel>(0.08));
  };
  const core::Pack pack = crafted();
  const checkpoint::Model resilience = online_resilience(0.0);
  const std::vector<double> releases{0.0, 10.0, 20.0};

  fault::NullGenerator none_a(4);
  const BatchResult easy = run_batch(pack, resilience, 4, releases, {}, none_a);
  EXPECT_EQ(easy.backfilled_jobs, 1);
  EXPECT_DOUBLE_EQ(easy.start_times[2], 20.0);  // backfilled on release
  EXPECT_DOUBLE_EQ(easy.start_times[1], 60.0);  // head not delayed

  fault::NullGenerator none_b(4);
  BatchConfig no_backfill;
  no_backfill.backfilling = false;
  const BatchResult fcfs =
      run_batch(pack, resilience, 4, releases, no_backfill, none_b);
  EXPECT_EQ(fcfs.backfilled_jobs, 0);
  EXPECT_GE(fcfs.start_times[2], fcfs.start_times[1]);
}

TEST(OnlineArrivals, ZeroReleaseBatchMatchesLegacyOverload) {
  // The static-release overload must reproduce the release-dated path
  // with all-zero releases bit for bit (same generator seeding).
  const core::Pack pack = make_pack({2.0e6, 1.0e6, 2.5e6});
  const checkpoint::Model resilience = online_resilience(5.0);
  const int p = 12;
  const double mtbf = units::years(5.0);

  const BatchResult legacy = run_batch(pack, resilience, p, {}, 99, mtbf);
  fault::ExponentialGenerator faults(p, 1.0 / mtbf, Rng::child(99, 0));
  const BatchResult dated = run_batch(pack, resilience, p,
                                      std::vector<double>(3, 0.0), {}, faults);
  EXPECT_EQ(legacy.makespan, dated.makespan);
  EXPECT_EQ(legacy.completion_times, dated.completion_times);
  EXPECT_EQ(legacy.faults_effective, dated.faults_effective);
}

}  // namespace
}  // namespace coredis::extensions
